(* Unit and property tests for the hi_util library. *)

open Hi_util
open Common

(* --- Xorshift --- *)

(* --- Crc32 --- *)

let test_crc32_vectors () =
  (* standard IEEE check values *)
  Alcotest.(check int32) "check string" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  Alcotest.(check int32) "single byte" 0xD202EF8Dl (Crc32.string "\x00")

let test_crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let partial = Crc32.update 0l s 0 split in
  (* incremental update over the two halves must equal the one-shot digest *)
  Alcotest.(check int32) "incremental = one-shot"
    (Crc32.string s)
    (Crc32.update partial s split (String.length s - split))

let test_crc32_detects_flips () =
  let rng = Xorshift.create 99 in
  for _ = 1 to 200 do
    let len = 1 + Xorshift.int rng 256 in
    let b = Bytes.init len (fun _ -> Char.chr (Xorshift.int rng 256)) in
    let crc = Crc32.bytes b in
    let off = Xorshift.int rng len in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl Xorshift.int rng 8)));
    check "single-bit flip detected" true (Crc32.bytes b <> crc)
  done

(* --- Fault --- *)

let test_fault_deterministic () =
  let config =
    {
      Fault.no_faults with
      transient_fetch_p = 0.3;
      corrupt_block_p = 0.1;
      latency_spike_p = 0.2;
      latency_spike_s = 0.01;
      torn_write_p = 0.1;
    }
  in
  let a = Fault.create ~config 11 and b = Fault.create ~config 11 in
  for _ = 1 to 1_000 do
    check "same transient decisions" true (Fault.transient_fetch a = Fault.transient_fetch b);
    check "same corruption decisions" true (Fault.corrupt_write a = Fault.corrupt_write b);
    check "same spike decisions" true (Fault.latency_spike a = Fault.latency_spike b);
    check "same torn-write decisions" true (Fault.torn_write a = Fault.torn_write b)
  done;
  check "counters agree" true (Fault.counters a = Fault.counters b)

let test_fault_rates () =
  let config = { Fault.no_faults with transient_fetch_p = 0.25 } in
  let f = Fault.create ~config 5 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Fault.transient_fetch f then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check (Printf.sprintf "rate %.3f near 0.25" rate) true (rate > 0.22 && rate < 0.28);
  check_int "counter matches" !hits (Fault.counters f).Fault.transient_injected

let test_fault_disabled () =
  let f = Fault.create 1 in
  for _ = 1 to 1_000 do
    check "no transient" false (Fault.transient_fetch f);
    check "no corruption" false (Fault.corrupt_write f);
    check "no spike" true (Fault.latency_spike f = 0.0)
  done

let test_rng_deterministic () =
  let a = Xorshift.create 7 and b = Xorshift.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xorshift.next_u64 a) (Xorshift.next_u64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Xorshift.create 1 and b = Xorshift.create 2 in
  check "different seeds diverge" true (Xorshift.next_u64 a <> Xorshift.next_u64 b)

let test_rng_bounds () =
  let rng = Xorshift.create 3 in
  for _ = 1 to 10_000 do
    let x = Xorshift.int rng 17 in
    check "in range" true (x >= 0 && x < 17)
  done

let test_rng_float01 () =
  let rng = Xorshift.create 4 in
  for _ = 1 to 10_000 do
    let x = Xorshift.float01 rng in
    check "float in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_uniformity () =
  let rng = Xorshift.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Xorshift.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check "roughly uniform" true (frac > 0.08 && frac < 0.12))
    buckets

let test_shuffle_permutation () =
  let rng = Xorshift.create 6 in
  let arr = Array.init 100 (fun i -> i) in
  Xorshift.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

(* --- Zipf --- *)

let test_zipf_range () =
  let rng = Xorshift.create 11 in
  let z = Zipf.create ~items:1000 rng in
  for _ = 1 to 10_000 do
    let x = Zipf.next z in
    check "in range" true (x >= 0 && x < 1000)
  done

let test_zipf_skew () =
  (* rank 0 should receive vastly more hits than rank 500 *)
  let rng = Xorshift.create 12 in
  let z = Zipf.create ~scrambled:false ~items:1000 rng in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let r = Zipf.next_rank z in
    counts.(r) <- counts.(r) + 1
  done;
  check "head much hotter than middle" true (counts.(0) > 20 * max 1 counts.(500));
  check "head is several percent of traffic" true (counts.(0) > 2_000)

let test_zipf_zeta () =
  let z2 = Zipf.zeta 2 1.0 in
  check "zeta(2,1) = 1 + 1/2" true (abs_float (z2 -. 1.5) < 1e-9)

let test_zipf_scrambled_spread () =
  (* scrambling must spread the hottest ranks across the id space *)
  let rng = Xorshift.create 13 in
  let z = Zipf.create ~scrambled:true ~items:1_000_000 rng in
  let hits = Array.init 1_000 (fun _ -> Zipf.next z) in
  let below = Array.fold_left (fun acc x -> if x < 500_000 then acc + 1 else acc) 0 hits in
  check "hot ids on both halves of the space" true (below > 200 && below < 800)

(* --- Bloom --- *)

let test_bloom_no_false_negatives () =
  let b = Bloom.create ~expected:10_000 () in
  for i = 0 to 9_999 do
    Bloom.add b (string_of_int i)
  done;
  for i = 0 to 9_999 do
    check "member found" true (Bloom.mem b (string_of_int i))
  done

let test_bloom_fpr () =
  let b = Bloom.create ~fpr:0.01 ~expected:10_000 () in
  for i = 0 to 9_999 do
    Bloom.add b (string_of_int i)
  done;
  let fp = ref 0 in
  for i = 10_000 to 29_999 do
    if Bloom.mem b (string_of_int i) then incr fp
  done;
  let rate = float_of_int !fp /. 20_000.0 in
  check (Printf.sprintf "fpr %.4f below 3%%" rate) true (rate < 0.03)

let test_bloom_clear () =
  let b = Bloom.create ~expected:100 () in
  Bloom.add b "hello";
  check "present" true (Bloom.mem b "hello");
  Bloom.clear b;
  check "cleared" false (Bloom.mem b "hello");
  check_int "count reset" 0 (Bloom.count b)

let test_bloom_sizing () =
  let small = Bloom.create ~expected:100 () in
  let large = Bloom.create ~expected:100_000 () in
  check "larger expectation, more bits" true (Bloom.nbits large > Bloom.nbits small);
  check "k >= 1" true (Bloom.hash_count small >= 1)

let test_bloom_capacity () =
  let b = Bloom.create ~expected:100 () in
  check_int "capacity = expected" 100 (Bloom.capacity b);
  for i = 0 to 149 do
    Bloom.add b (string_of_int i)
  done;
  (* count can exceed capacity — that's the overload signal callers use *)
  check "count past capacity" true (Bloom.count b > Bloom.capacity b);
  check_int "capacity unchanged by load" 100 (Bloom.capacity b)

(* --- Json --- *)

let test_json_escaping () =
  Alcotest.(check string) "control chars and quotes"
    {|{"k":"a\"b\\c\n\t\u0001"}|}
    (Json.to_string (Json.Obj [ ("k", Json.Str "a\"b\\c\n\t\001") ]));
  Alcotest.(check string) "empty containers" {|[{},[]]|}
    (Json.to_string (Json.List [ Json.Obj []; Json.List [] ]))

let test_json_numbers () =
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "float roundtrip" "0.1" (Json.to_string (Json.Float 0.1));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.number nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.number infinity));
  Alcotest.(check string) "negative" "-3.5" (Json.to_string (Json.Float (-3.5)))

let test_json_pretty () =
  Alcotest.(check string) "pretty object"
    "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
    (Json.to_string_pretty
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]))

(* --- Metrics --- *)

let test_metrics_counters () =
  Metrics.reset ();
  let s = Metrics.scope ~labels:[ ("x", "1") ] "test_metrics" in
  let c = Metrics.counter s "ops" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter value" 5 (Metrics.counter_value c);
  (* same (scope, labels, name) resolves to the same handle *)
  let c2 = Metrics.counter s "ops" in
  Metrics.incr c2;
  check_int "aggregated" 6 (Metrics.counter_value c);
  Alcotest.(check (option int)) "find_counter" (Some 6) (Metrics.find_counter s "ops")

let test_metrics_kind_mismatch () =
  let s = Metrics.scope "test_metrics_kinds" in
  ignore (Metrics.counter s "c");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: test_metrics_kinds/c already registered as a counter")
    (fun () -> ignore (Metrics.gauge s "c"))

let test_metrics_snapshot_and_reset () =
  Metrics.reset ();
  let s = Metrics.scope "test_metrics_snap" in
  let c = Metrics.counter s "b_count" in
  let g = Metrics.gauge s "a_level" in
  let h = Metrics.histogram s "c_lat" in
  Metrics.add c 3;
  Metrics.set g 1.5;
  Metrics.observe h 0.25;
  Metrics.observe h 0.75;
  let mine =
    List.filter (fun r -> r.Metrics.sample_scope = "test_metrics_snap") (Metrics.snapshot ())
  in
  Alcotest.(check (list string)) "sorted by name" [ "a_level"; "b_count"; "c_lat" ]
    (List.map (fun r -> r.Metrics.name) mine);
  (match List.map (fun r -> r.Metrics.value) mine with
  | [ Metrics.Gauge_value v; Metrics.Counter_value n; Metrics.Hist_value hs ] ->
    check "gauge" true (v = 1.5);
    check_int "counter" 3 n;
    check_int "hist samples" 2 hs.Metrics.samples;
    check "hist mean" true (abs_float (hs.Metrics.mean -. 0.5) < 1e-9)
  | _ -> Alcotest.fail "unexpected snapshot shape");
  (* the snapshot serializes *)
  check "dump is json" true (String.length (Metrics.dump ()) > 2);
  (* reset zeroes in place: existing handles stay usable *)
  Metrics.reset ();
  check_int "counter zeroed" 0 (Metrics.counter_value c);
  check "gauge zeroed" true (Metrics.gauge_value g = 0.0);
  Metrics.incr c;
  check_int "handle still live after reset" 1 (Metrics.counter_value c)

let test_metrics_time () =
  let s = Metrics.scope "test_metrics_time" in
  let h = Metrics.histogram s "lat" in
  let r = Metrics.time h (fun () -> 7 * 6) in
  check_int "thunk result" 42 r;
  check "sample recorded" true (Metrics.histogram_count h = 1)

(* --- Key_codec --- *)

let test_codec_roundtrip () =
  List.iter
    (fun x -> Alcotest.(check int64) "roundtrip" x (Key_codec.decode_u64 (Key_codec.encode_u64 x)))
    [ 0L; 1L; 255L; 256L; Int64.max_int; Int64.min_int; -1L ]

let test_codec_order_preserving =
  QCheck.Test.make ~name:"u64 encoding preserves unsigned order" ~count:1000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let ca = Int64.unsigned_compare a b in
      let cs = String.compare (Key_codec.encode_u64 a) (Key_codec.encode_u64 b) in
      compare (compare ca 0) (compare cs 0) = 0)

let test_email_deterministic () =
  check_string "same id same email" (Key_codec.email_of_id 42) (Key_codec.email_of_id 42);
  check "emails contain @" true (String.contains (Key_codec.email_of_id 7) '@')

let test_generate_keys_distinct () =
  List.iter
    (fun kt ->
      let keys = Key_codec.generate_keys kt 5_000 in
      let tbl = Hashtbl.create 8192 in
      Array.iter (fun k -> Hashtbl.replace tbl k ()) keys;
      check_int (Key_codec.key_type_name kt ^ " keys distinct") 5_000 (Hashtbl.length tbl))
    Key_codec.all_key_types

let test_codec_order_10k () =
  (* 10,000 seeded random u64 pairs: byte order must equal unsigned
     integer order in every case, not just QCheck's sample *)
  let rng = Xorshift.create 0xC0DEC in
  for _ = 1 to 10_000 do
    let a = Xorshift.next_u64 rng and b = Xorshift.next_u64 rng in
    let ci = compare (Int64.unsigned_compare a b) 0 in
    let cs = compare (String.compare (Key_codec.encode_u64 a) (Key_codec.encode_u64 b)) 0 in
    if ci <> cs then Alcotest.failf "order broken for %Lu / %Lu" a b
  done

let test_email_pairs_10k () =
  (* The address embeds the id as a zero-padded 8-digit run just before
     '@', after a hash-derived stem: ids roundtrip, distinct ids never
     collide, and addresses sharing a stem sort in id order. *)
  let id_of e =
    let at = String.index e '@' in
    int_of_string (String.sub e (at - 8) 8)
  in
  let prefix e =
    let at = String.index e '@' in
    String.sub e 0 (at - 8)
  in
  let rng = Xorshift.create 0xE7A11 in
  for _ = 1 to 10_000 do
    let i = Xorshift.int rng 100_000_000 and j = Xorshift.int rng 100_000_000 in
    let ei = Key_codec.email_of_id i and ej = Key_codec.email_of_id j in
    check_int "id embedded verbatim" i (id_of ei);
    if i <> j && ei = ej then Alcotest.failf "ids %d and %d collide on %s" i j ei;
    if i <> j && prefix ei = prefix ej then begin
      let want = compare (compare i j) 0 in
      let got = compare (String.compare ei ej) 0 in
      if want <> got then Alcotest.failf "same-stem emails out of id order: %s / %s" ei ej
    end
  done;
  (* random pairs rarely share a stem, so force coverage: bucket a dense id
     range by stem and demand each bucket sorts identically by id and by
     address bytes *)
  let buckets = Hashtbl.create 64 in
  for id = 0 to 3_999 do
    let e = Key_codec.email_of_id id in
    let p = prefix e in
    let tail = try Hashtbl.find buckets p with Not_found -> [] in
    Hashtbl.replace buckets p ((id, e) :: tail)
  done;
  check "stems actually collide" true (Hashtbl.length buckets < 4_000);
  Hashtbl.iter
    (fun _ group ->
      let by_id = List.sort compare group in
      let by_email = List.sort (fun (_, a) (_, b) -> String.compare a b) group in
      if by_id <> by_email then Alcotest.fail "same-stem email order diverges from id order")
    buckets

let test_email_avg_length () =
  let keys = Key_codec.generate_keys Key_codec.Email 2_000 in
  let total = Array.fold_left (fun acc k -> acc + String.length k) 0 keys in
  let avg = float_of_int total /. 2_000.0 in
  check (Printf.sprintf "average email length %.1f in [20,40]" avg) true (avg >= 20.0 && avg <= 40.0)

(* --- Inplace_merge --- *)

let sorted_int_list = QCheck.(list int |> map (List.sort_uniq compare))

let test_merge_model =
  QCheck.Test.make ~name:"merge = sorted union (with duplicates kept)" ~count:500
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let a = Array.of_list (List.sort compare xs) in
      let b = Array.of_list (List.sort compare ys) in
      let merged = Inplace_merge.merge ~cmp:compare a b in
      Array.to_list merged = List.sort compare (xs @ ys))

let test_extend_model =
  QCheck.Test.make ~name:"extend (in-place) = merge" ~count:500
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let a = Array.of_list (List.sort compare xs) in
      let b = Array.of_list (List.sort compare ys) in
      Inplace_merge.extend ~cmp:compare a b = Inplace_merge.merge ~cmp:compare a b)

let test_merge_resolve_replaces =
  QCheck.Test.make ~name:"merge_resolve drops or replaces duplicates" ~count:500
    QCheck.(pair sorted_int_list sorted_int_list)
    (fun (xs, ys) ->
      let a = Array.of_list xs and b = Array.of_list ys in
      (* resolve keeps the new element *)
      let merged = Inplace_merge.merge_resolve ~cmp:compare ~resolve:(fun _ n -> Some n) a b in
      Array.to_list merged = List.sort_uniq compare (xs @ ys))

let test_merge_resolve_drop () =
  let a = [| 1; 2; 3; 4 |] and b = [| 2; 4; 5 |] in
  let merged = Inplace_merge.merge_resolve ~cmp:compare ~resolve:(fun _ _ -> None) a b in
  Alcotest.(check (array int)) "dropped equal keys" [| 1; 3; 5 |] merged

let test_merge_zero_length () =
  let e : int array = [||] in
  let chk name want got = Alcotest.(check (array int)) name want got in
  chk "merge both empty" [||] (Inplace_merge.merge ~cmp:compare e e);
  chk "merge empty left" [| 1; 2 |] (Inplace_merge.merge ~cmp:compare e [| 1; 2 |]);
  chk "merge empty right" [| 1; 2 |] (Inplace_merge.merge ~cmp:compare [| 1; 2 |] e);
  chk "extend with empty" [| 3 |] (Inplace_merge.extend ~cmp:compare [| 3 |] e);
  chk "extend onto empty" [| 3 |] (Inplace_merge.extend ~cmp:compare e [| 3 |]);
  chk "resolve both empty" [||]
    (Inplace_merge.merge_resolve ~cmp:compare ~resolve:(fun _ n -> Some n) e e);
  chk "resolve empty left" [| 7 |]
    (Inplace_merge.merge_resolve ~cmp:compare ~resolve:(fun _ n -> Some n) e [| 7 |]);
  chk "resolve empty right" [| 7 |]
    (Inplace_merge.merge_resolve ~cmp:compare ~resolve:(fun _ n -> Some n) [| 7 |] e)

let test_merge_overlapping_duplicates () =
  (* runs of equal elements on both sides: merge keeps every copy, stably *)
  let a = [| 1; 1; 1; 2; 2; 3 |] and b = [| 1; 1; 2; 3; 3; 3 |] in
  let merged = Inplace_merge.merge ~cmp:compare a b in
  Alcotest.(check (array int)) "all duplicates kept"
    [| 1; 1; 1; 1; 1; 2; 2; 2; 3; 3; 3; 3 |] merged;
  Alcotest.(check (array int)) "extend agrees" merged (Inplace_merge.extend ~cmp:compare a b);
  (* overlapping keys through merge_resolve hit [resolve] exactly once per
     collision, old element first *)
  let a = [| 10; 20; 30; 40; 50 |] and b = [| 20; 30; 40 |] in
  let sum o n = Some (o + n) in
  Alcotest.(check (array int)) "each collision resolved once" [| 10; 40; 60; 80; 50 |]
    (Inplace_merge.merge_resolve ~cmp:compare ~resolve:sum a b);
  (* fully-overlapping inputs with a dropping resolver vanish entirely *)
  Alcotest.(check (array int)) "total overlap, all dropped" [||]
    (Inplace_merge.merge_resolve ~cmp:compare ~resolve:(fun _ _ -> None) b b)

let test_inplace_rotation () =
  let arr = [| 5; 6; 7; 1; 2; 3; 4 |] in
  Inplace_merge.inplace ~cmp:compare arr 3;
  Alcotest.(check (array int)) "merged" [| 1; 2; 3; 4; 5; 6; 7 |] arr

(* --- Clock_cache --- *)

let test_cache_basic () =
  let c = Clock_cache.create 4 in
  Clock_cache.put c 1 "one";
  Clock_cache.put c 2 "two";
  Alcotest.(check (option string)) "hit" (Some "one") (Clock_cache.find c 1);
  Alcotest.(check (option string)) "miss" None (Clock_cache.find c 9)

let test_cache_eviction () =
  let c = Clock_cache.create 3 in
  for i = 1 to 10 do
    Clock_cache.put c i i
  done;
  let live = List.filter (fun i -> Clock_cache.find c i <> None) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  check_int "capacity respected" 3 (List.length live)

let test_cache_second_chance () =
  let c = Clock_cache.create 2 in
  Clock_cache.put c 1 "a";
  Clock_cache.put c 2 "b";
  (* reference 1 so it survives the next eviction *)
  ignore (Clock_cache.find c 1);
  Clock_cache.put c 3 "c";
  check "recently used survives" true (Clock_cache.find c 1 <> None);
  check "new entry present" true (Clock_cache.find c 3 <> None)

let test_cache_hit_rate () =
  let c = Clock_cache.create 2 in
  Clock_cache.put c 1 "a";
  ignore (Clock_cache.find c 1);
  ignore (Clock_cache.find c 2);
  check "hit rate 0.5" true (abs_float (Clock_cache.hit_rate c -. 0.5) < 1e-9)

let test_cache_capacity_one () =
  (* a single slot degenerates clock eviction to direct replacement: the
     second-chance bit cannot save the sole resident *)
  let c = Clock_cache.create 1 in
  Clock_cache.put c 1 "a";
  Alcotest.(check (option string)) "present" (Some "a") (Clock_cache.find c 1);
  Clock_cache.put c 2 "b";
  Alcotest.(check (option string)) "evicted" None (Clock_cache.find c 1);
  Alcotest.(check (option string)) "replacement present" (Some "b") (Clock_cache.find c 2);
  ignore (Clock_cache.find c 2);
  Clock_cache.put c 3 "c";
  Alcotest.(check (option string)) "referenced resident still evicted" None (Clock_cache.find c 2);
  Alcotest.(check (option string)) "newest present" (Some "c") (Clock_cache.find c 3)

(* --- Compress --- *)

let test_compress_roundtrip_basic () =
  List.iter
    (fun s -> check_string "roundtrip" s (Compress.decompress (Compress.compress s)))
    [
      "";
      "a";
      "hello world hello world hello world";
      String.make 10_000 'x';
      "abcdefgh12345678abcdefgh12345678";
    ]

let test_compress_roundtrip_random =
  QCheck.Test.make ~name:"compress/decompress roundtrip" ~count:500 QCheck.string (fun s ->
      Compress.decompress (Compress.compress s) = s)

let test_compress_ratio () =
  (* highly repetitive data must actually shrink *)
  let s = String.concat "" (List.init 500 (fun i -> Printf.sprintf "row-%04d;" (i mod 10))) in
  let c = Compress.compress s in
  check
    (Printf.sprintf "ratio %.2f < 0.35" (float_of_int (String.length c) /. float_of_int (String.length s)))
    true
    (String.length c * 3 < String.length s)

let test_compress_header () =
  let s = "some payload bytes" in
  check_int "uncompressed length recorded" (String.length s) (Compress.uncompressed_length (Compress.compress s))

(* --- Histogram --- *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h (float_of_int i)
  done;
  check "median ~50" true (abs_float (Histogram.median h -. 50.0) <= 1.0);
  check "p99 ~99" true (abs_float (Histogram.percentile h 99.0 -. 99.0) <= 1.0);
  check "max = 100" true (Histogram.max_value h = 100.0);
  check "mean = 50.5" true (abs_float (Histogram.mean h -. 50.5) < 1e-9)

let test_histogram_interleaved () =
  (* records after a percentile query must be included in the next query *)
  let h = Histogram.create () in
  Histogram.record h 1.0;
  ignore (Histogram.median h);
  Histogram.record h 100.0;
  check "max updated" true (Histogram.max_value h = 100.0)

(* --- Vec --- *)

let test_vec_growth () =
  let v = Vec.create 0 in
  for i = 0 to 999 do
    Vec.push v i
  done;
  check_int "length" 1000 (Vec.length v);
  check_int "get" 500 (Vec.get v 500);
  check_int "pop" 999 (Vec.pop v);
  check_int "length after pop" 999 (Vec.length v)

(* --- Op_counter --- *)

let test_op_counter () =
  Op_counter.reset ();
  let s0 = Op_counter.snapshot () in
  Op_counter.visit ();
  Op_counter.compare_keys 3;
  Op_counter.deref ();
  let s1 = Op_counter.snapshot () in
  let d = Op_counter.diff s0 s1 in
  check_int "visits" 1 d.node_visits;
  check_int "comparisons" 3 d.key_comparisons;
  check_int "derefs" 1 d.pointer_derefs;
  check_int "cache lines" 2 (Op_counter.cache_lines_touched d)

let () =
  Alcotest.run "hi_util"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
          Alcotest.test_case "detects bit flips" `Quick test_crc32_detects_flips;
        ] );
      ( "fault",
        [
          Alcotest.test_case "deterministic" `Quick test_fault_deterministic;
          Alcotest.test_case "rates" `Quick test_fault_rates;
          Alcotest.test_case "disabled by default" `Quick test_fault_disabled;
        ] );
      ( "xorshift",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float01 bounds" `Quick test_rng_float01;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "zeta" `Quick test_zipf_zeta;
          Alcotest.test_case "scrambled spread" `Quick test_zipf_scrambled_spread;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "no false negatives" `Quick test_bloom_no_false_negatives;
          Alcotest.test_case "false positive rate" `Quick test_bloom_fpr;
          Alcotest.test_case "clear" `Quick test_bloom_clear;
          Alcotest.test_case "sizing" `Quick test_bloom_sizing;
          Alcotest.test_case "capacity" `Quick test_bloom_capacity;
        ] );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "pretty printing" `Quick test_json_pretty;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters aggregate" `Quick test_metrics_counters;
          Alcotest.test_case "kind mismatch rejected" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "snapshot and reset" `Quick test_metrics_snapshot_and_reset;
          Alcotest.test_case "time" `Quick test_metrics_time;
        ] );
      ( "key_codec",
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip
        :: Alcotest.test_case "email deterministic" `Quick test_email_deterministic
        :: Alcotest.test_case "distinct keys" `Quick test_generate_keys_distinct
        :: Alcotest.test_case "email length" `Quick test_email_avg_length
        :: Alcotest.test_case "u64 order, 10k pairs" `Quick test_codec_order_10k
        :: Alcotest.test_case "email pairs, 10k" `Quick test_email_pairs_10k
        :: qsuite [ test_codec_order_preserving ] );
      ( "inplace_merge",
        Alcotest.test_case "resolve drop" `Quick test_merge_resolve_drop
        :: Alcotest.test_case "rotation merge" `Quick test_inplace_rotation
        :: Alcotest.test_case "zero-length inputs" `Quick test_merge_zero_length
        :: Alcotest.test_case "overlapping duplicates" `Quick test_merge_overlapping_duplicates
        :: qsuite [ test_merge_model; test_extend_model; test_merge_resolve_replaces ] );
      ( "clock_cache",
        [
          Alcotest.test_case "basic" `Quick test_cache_basic;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "second chance" `Quick test_cache_second_chance;
          Alcotest.test_case "hit rate" `Quick test_cache_hit_rate;
          Alcotest.test_case "capacity one" `Quick test_cache_capacity_one;
        ] );
      ( "compress",
        Alcotest.test_case "roundtrip basic" `Quick test_compress_roundtrip_basic
        :: Alcotest.test_case "ratio" `Quick test_compress_ratio
        :: Alcotest.test_case "header" `Quick test_compress_header
        :: qsuite [ test_compress_roundtrip_random ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "interleaved" `Quick test_histogram_interleaved;
        ] );
      ("vec", [ Alcotest.test_case "growth" `Quick test_vec_growth ]);
      ("op_counter", [ Alcotest.test_case "counters" `Quick test_op_counter ]);
    ]
