(* Tests for the partitioned runtime (hi_shard, DESIGN.md §11): mailbox
   and future primitives, jump-consistent routing, partition lifecycle,
   two-phase engine primitives, cross-partition atomicity, the sharded
   workloads, and the Sequential-mode differential harness. *)

open Hi_hstore
open Hi_util
open Hi_workloads
open Hi_shard
open Common

(* --- mailbox --- *)

let test_mailbox_fifo () =
  let mb = Mailbox.create () in
  for i = 0 to 99 do
    Mailbox.push mb i
  done;
  check_int "length" 100 (Mailbox.length mb);
  for i = 0 to 99 do
    match Mailbox.try_pop mb with
    | Some j -> check_int "fifo order" i j
    | None -> Alcotest.fail "queue ran dry"
  done;
  check "empty" true (Mailbox.try_pop mb = None)

let test_mailbox_close_drains () =
  let mb = Mailbox.create () in
  Mailbox.push mb 1;
  Mailbox.push mb 2;
  Mailbox.close mb;
  check "closed" true (Mailbox.is_closed mb);
  check "push refused" true
    (match Mailbox.push mb 3 with exception Mailbox.Closed -> true | () -> false);
  check "drains 1" true (Mailbox.pop mb = Some 1);
  check "drains 2" true (Mailbox.pop mb = Some 2);
  check "then None" true (Mailbox.pop mb = None);
  check "still None" true (Mailbox.pop mb = None)

let test_mailbox_cross_domain () =
  let mb = Mailbox.create () in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Mailbox.push mb i
        done;
        Mailbox.close mb)
  in
  let sum = ref 0 and count = ref 0 and in_order = ref true in
  let last = ref 0 in
  let rec drain () =
    match Mailbox.pop mb with
    | Some i ->
      if i <= !last then in_order := false;
      last := i;
      sum := !sum + i;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  check_int "all delivered" n !count;
  check_int "no duplicates or losses" (n * (n + 1) / 2) !sum;
  check "delivery in push order" true !in_order

(* --- future --- *)

let test_future_basic () =
  let f = Future.create () in
  check "poll empty" true (Future.poll f = None);
  Future.fill f 42;
  check "poll filled" true (Future.poll f = Some 42);
  check_int "await" 42 (Future.await f);
  check "double fill refused" true
    (match Future.fill f 0 with exception Invalid_argument _ -> true | () -> false)

let test_future_cross_domain () =
  let f = Future.create () in
  let d = Domain.spawn (fun () -> Future.fill f "done") in
  check_string "await across domains" "done" (Future.await f);
  Domain.join d

(* --- routing --- *)

let test_jump_hash_stability () =
  (* growing n -> n+1 buckets moves keys only INTO the new bucket *)
  let moved = ref 0 and total = ref 0 in
  for k = 1 to 2_000 do
    let key = Int64.of_int (k * 2_654_435_761) in
    for n = 1 to 8 do
      let a = Router.jump_hash key n and b = Router.jump_hash key (n + 1) in
      incr total;
      if a <> b then begin
        incr moved;
        check_int "moved key lands in the new bucket" n b
      end
    done
  done;
  check "some keys moved" true (!moved > 0);
  check "only ~1/(n+1) of keys moved" true (!moved < !total / 3)

let test_route_balance () =
  let n = 4 in
  let router =
    Router.create ~mode:(Router.Sequential (Xorshift.create 1)) ~partitions:n
      ~init:(fun _ _ -> ())
      ()
  in
  let counts = Array.make n 0 in
  for i = 0 to 9_999 do
    let p = Router.route_key router (Printf.sprintf "key-%d" i) in
    counts.(p) <- counts.(p) + 1
  done;
  Array.iter
    (fun c -> check "string keys balanced within 20%" true (abs (c - 2_500) < 500))
    counts;
  let icounts = Array.make n 0 in
  for i = 0 to 9_999 do
    let p = Router.route_int router i in
    icounts.(p) <- icounts.(p) + 1
  done;
  Array.iter
    (fun c -> check "int keys balanced within 20%" true (abs (c - 2_500) < 500))
    icounts;
  (* determinism *)
  check_int "route_key deterministic" (Router.route_key router "abc")
    (Router.route_key router "abc");
  Router.stop router

(* --- partition lifecycle --- *)

let counter_schema =
  Schema.make ~name:"c" ~columns:[ ("id", Value.TInt); ("v", Value.TInt) ] ~pk:[ "id" ] ()

let test_partition_lifecycle () =
  let part = Partition.create ~id:0 () in
  let tbl = Engine.create_table (Partition.engine part) counter_schema in
  (* inline mode before start *)
  check "unstarted" true (not (Partition.started part));
  (match Partition.run part (fun e -> ignore (Engine.insert e tbl [| Value.Int 1; Value.Int 0 |])) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inline insert: %s" (Engine.txn_error_to_string e));
  Partition.start part;
  check "started" true (Partition.started part);
  for _ = 1 to 100 do
    match
      Partition.run part (fun e ->
          match Table.find_by_pk tbl [ Value.Int 1 ] with
          | Some rowid ->
            let v = match (Table.read tbl rowid).(1) with Value.Int v -> v | _ -> 0 in
            Engine.update e tbl rowid [ (1, Value.Int (v + 1)) ]
          | None -> raise (Engine.Abort "missing"))
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "update: %s" (Engine.txn_error_to_string e)
  done;
  Partition.stop part;
  (match Table.find_by_pk tbl [ Value.Int 1 ] with
  | Some rowid -> check "all 100 increments applied serially" true
      ((Table.read tbl rowid).(1) = Value.Int 100)
  | None -> Alcotest.fail "row vanished")

exception Boom

let test_partition_job_failure_surfaces () =
  let part = Partition.create ~id:7 () in
  Partition.start part;
  Partition.post part (fun _ -> raise Boom);
  check "leaked job exception re-raised at stop" true
    (match Partition.stop part with exception Boom -> true | () -> false)

(* --- engine two-phase primitives --- *)

let test_prepare_commit_abort () =
  let engine = Engine.create () in
  let tbl = Engine.create_table engine counter_schema in
  (match Engine.prepare engine (fun e -> ignore (Engine.insert e tbl [| Value.Int 1; Value.Int 5 |])) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prepare: %s" (Engine.txn_error_to_string e));
  check "run refused while prepared" true
    (match Engine.run engine (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Engine.commit_prepared engine;
  check "prepared effect kept" true (Table.find_by_pk tbl [ Value.Int 1 ] <> None);
  (match Engine.prepare engine (fun e -> ignore (Engine.insert e tbl [| Value.Int 2; Value.Int 6 |])) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prepare 2: %s" (Engine.txn_error_to_string e));
  Engine.abort_prepared engine;
  check "aborted prepare rolled back" true (Table.find_by_pk tbl [ Value.Int 2 ] = None);
  check "first row still there" true (Table.find_by_pk tbl [ Value.Int 1 ] <> None);
  (* a failed prepare leaves nothing pending *)
  (match Engine.prepare engine (fun _ -> raise (Engine.Abort "no")) with
  | Ok () -> Alcotest.fail "prepare should have aborted"
  | Error _ -> ());
  match Engine.run engine (fun _ -> ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "run after failed prepare: %s" (Engine.txn_error_to_string e)

let test_deferred_merge () =
  let config =
    { Engine.default_config with index_kind = Engine.Hybrid_config; merge_ratio = 2; inline_merge = false }
  in
  let engine = Engine.create ~config () in
  let tbl = Engine.create_table engine counter_schema in
  let r =
    Engine.run engine (fun e ->
        (* past the hybrid trigger's min_merge_size floor (4096) *)
        for i = 1 to 5_000 do
          ignore (Engine.insert e tbl [| Value.Int i; Value.Int i |])
        done)
  in
  check "bulk insert ok" true (r = Ok ());
  check "merge deferred, not inline" true (Engine.merge_pending engine);
  let ran = Engine.run_pending_merges engine in
  check "a merge ran" true (ran > 0);
  check "nothing left pending" true (not (Engine.merge_pending engine));
  (* data survives the background merge *)
  check "row findable after merge" true (Table.find_by_pk tbl [ Value.Int 1_500 ] <> None)

(* --- cross-partition atomicity (Parallel mode: real domains) --- *)

let balance router ~partition id =
  match
    Router.single router ~partition (fun engine ->
        let tbl = Engine.table engine "c" in
        match Table.find_by_pk tbl [ Value.Int id ] with
        | Some rowid -> (
          match (Table.read tbl rowid).(1) with Value.Int v -> Some v | _ -> None)
        | None -> None)
  with
  | Ok v -> v
  | Error e -> Alcotest.failf "balance read: %s" (Engine.txn_error_to_string e)

let test_multi_partition_atomicity () =
  let router =
    Router.create ~partitions:2
      ~init:(fun i engine ->
        let tbl = Engine.create_table engine counter_schema in
        ignore (Table.insert tbl [| Value.Int i; Value.Int 100 |]))
      ()
  in
  let update_by id delta engine =
    let tbl = Engine.table engine "c" in
    match Table.find_by_pk tbl [ Value.Int id ] with
    | Some rowid ->
      let v = match (Table.read tbl rowid).(1) with Value.Int v -> v | _ -> 0 in
      if v + delta < 0 then raise (Engine.Abort "insufficient");
      Engine.update engine tbl rowid [ (1, Value.Int (v + delta)) ]
    | None -> raise (Engine.Abort "missing")
  in
  (* commit case: both sides apply *)
  (match
     Router.multi router
       [
         { Router.part = 0; body = update_by 0 (-30) };
         { Router.part = 1; body = update_by 1 30 };
       ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "multi commit: %s" (Engine.txn_error_to_string e));
  check "debit applied" true (balance router ~partition:0 0 = Some 70);
  check "credit applied" true (balance router ~partition:1 1 = Some 130);
  (* abort case: participant 1 fails, participant 0 must roll back *)
  (match
     Router.multi router
       [
         { Router.part = 0; body = update_by 0 (-50) };
         { Router.part = 1; body = update_by 99 1 (* no such account *) };
       ]
   with
  | Ok () -> Alcotest.fail "multi should have aborted"
  | Error _ -> ());
  check "prepared debit rolled back" true (balance router ~partition:0 0 = Some 70);
  check "other side untouched" true (balance router ~partition:1 1 = Some 130);
  (* partitions stay live for follow-up transactions *)
  (match
     Router.multi router
       [
         { Router.part = 0; body = update_by 0 (-70) };
         { Router.part = 1; body = update_by 1 70 };
       ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "multi after abort: %s" (Engine.txn_error_to_string e));
  check "second transfer applied" true (balance router ~partition:1 1 = Some 200);
  check "committed counted" true (Router.total_committed router >= 2);
  Router.stop router

let test_multi_rejects_bad_participants () =
  let router =
    Router.create ~mode:(Router.Sequential (Xorshift.create 3)) ~partitions:2
      ~init:(fun _ engine -> ignore (Engine.create_table engine counter_schema))
      ()
  in
  check "empty participant list refused" true
    (match Router.multi router [] with exception Invalid_argument _ -> true | _ -> false);
  check "duplicate partitions refused" true
    (match
       Router.multi router
         [ { Router.part = 0; body = ignore }; { Router.part = 0; body = ignore } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Router.stop router

(* --- ordered per-partition locking edge cases (DESIGN.md §14) --- *)

(* Run [f] on its own domain but fail the test instead of hanging the
   suite if it does not finish in [s] seconds — a leaked coordinator
   lock shows up as exactly that hang. *)
let with_deadline ~s f =
  let finished = Atomic.make false in
  let result = ref None in
  let d =
    Domain.spawn (fun () ->
        result := Some (f ());
        Atomic.set finished true)
  in
  let deadline = Unix.gettimeofday () +. s in
  let rec wait () =
    if Atomic.get finished then begin
      Domain.join d;
      Option.get !result
    end
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "deadline exceeded: suspected leaked coordinator lock"
    else begin
      Unix.sleepf 0.002;
      wait ()
    end
  in
  wait ()

let transfer_router () =
  Router.create ~partitions:3
    ~init:(fun i engine ->
      let tbl = Engine.create_table engine counter_schema in
      ignore (Table.insert tbl [| Value.Int i; Value.Int 100 |]))
    ()

let update_by id delta engine =
  let tbl = Engine.table engine "c" in
  match Table.find_by_pk tbl [ Value.Int id ] with
  | Some rowid ->
    let v = match (Table.read tbl rowid).(1) with Value.Int v -> v | _ -> 0 in
    if v + delta < 0 then raise (Engine.Abort "insufficient");
    Engine.update engine tbl rowid [ (1, Value.Int (v + delta)) ]
  | None -> raise (Engine.Abort "missing")

(* The single-partition fast path takes no coordinator locks: it must
   keep flowing while every coordinator lock is held.  A coordinator,
   by contrast, must block on a held participant lock and proceed the
   moment it is released. *)
let test_fast_path_bypasses_locks () =
  let router = transfer_router () in
  Router.with_partition_locks router [ 0; 1; 2 ] (fun () ->
      check "single runs under held locks" true (balance router ~partition:0 0 = Some 100);
      check "single writes under held locks" true
        (Router.single router ~partition:1 (update_by 1 5) = Ok ()));
  let started = Atomic.make false and finished = Atomic.make false in
  let coordinator = ref None in
  Router.with_partition_locks router [ 1 ] (fun () ->
      coordinator :=
        Some
          (Domain.spawn (fun () ->
               Atomic.set started true;
               let r =
                 Router.multi router
                   [
                     { Router.part = 0; body = update_by 0 (-10) };
                     { Router.part = 1; body = update_by 1 10 };
                   ]
               in
               Atomic.set finished true;
               r));
      while not (Atomic.get started) do
        Unix.sleepf 0.001
      done;
      Unix.sleepf 0.02;
      check "coordinator blocked on held participant lock" false (Atomic.get finished));
  let r = Domain.join (Option.get !coordinator) in
  check "coordinator completed after release" true (r = Ok ());
  check "transfer applied" true (balance router ~partition:1 1 = Some 115);
  Router.stop router

let test_lock_acquisition_validation () =
  let router = transfer_router () in
  check "duplicate partitions refused" true
    (match Router.with_partition_locks router [ 1; 1 ] (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  check "negative partition refused" true
    (match Router.with_partition_locks router [ -1 ] (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  check "out-of-range partition refused" true
    (match Router.with_partition_locks router [ 3 ] (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* same-partition-twice multi is refused before any lock is taken... *)
  check "same-partition-twice multi refused" true
    (match
       Router.multi router
         [ { Router.part = 2; body = ignore }; { Router.part = 2; body = ignore } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* ...and leaks nothing: partition 2's lock is still acquirable *)
  with_deadline ~s:10.0 (fun () -> Router.with_partition_locks router [ 2 ] (fun () -> ()));
  Router.stop router

(* A coordinator abort — participant failure or body exception — must
   release every lock it held, or the next transaction over those
   partitions hangs forever. *)
let test_abort_releases_locks () =
  let router = transfer_router () in
  (match
     Router.multi router
       [
         { Router.part = 0; body = update_by 0 (-10) };
         { Router.part = 2; body = update_by 99 1 (* no such account: abort *) };
       ]
   with
  | Ok () -> Alcotest.fail "multi should have aborted"
  | Error _ -> ());
  check "prepared side rolled back" true (balance router ~partition:0 0 = Some 100);
  (* the same partitions must be immediately lockable and usable *)
  with_deadline ~s:10.0 (fun () ->
      Router.with_partition_locks router [ 0; 2 ] (fun () -> ()));
  let r =
    with_deadline ~s:10.0 (fun () ->
        Router.multi router
          [
            { Router.part = 0; body = update_by 0 (-10) };
            { Router.part = 2; body = update_by 2 10 };
          ])
  in
  check "follow-up multi commits" true (r = Ok ());
  check "follow-up applied" true (balance router ~partition:2 2 = Some 110);
  Router.stop router

(* Router.stop while a 2PC transaction is in flight: partition stop
   drains queued jobs, so the transaction completes atomically and stop
   joins cleanly afterwards — no stranded prepared partition, no hang. *)
let test_stop_during_inflight_2pc () =
  let router = transfer_router () in
  let entered = Atomic.make false in
  let coordinator =
    Domain.spawn (fun () ->
        Router.multi router
          [
            {
              Router.part = 0;
              body =
                (fun engine ->
                  Atomic.set entered true;
                  (* hold the prepare long enough that stop overlaps it *)
                  Unix.sleepf 0.05;
                  update_by 0 (-25) engine);
            };
            { Router.part = 1; body = update_by 1 25 };
          ])
  in
  while not (Atomic.get entered) do
    Unix.sleepf 0.001
  done;
  (* the transaction is mid-prepare on partition 0's domain *)
  with_deadline ~s:30.0 (fun () -> Router.stop router);
  let r = Domain.join coordinator in
  check "in-flight 2PC completed atomically under stop" true (r = Ok ())

(* --- sharded workloads (Parallel smoke + consistency) --- *)

let run_workload next router n =
  Shard_runner.run ~batch:16 ~router ~next ~num_txns:n ()

let test_voter_shard () =
  let scale = { Voter.default_scale with phone_numbers = 2_000 } in
  let w = Shard_workload.Voter_shard.create ~scale ~seed:11 ~partitions:2 () in
  let stats =
    run_workload (Shard_workload.Voter_shard.next w) (Shard_workload.Voter_shard.router w) 600
  in
  check "most votes commit" true (stats.Shard_runner.committed > 400);
  check_int "accounted for" stats.Shard_runner.total
    (stats.Shard_runner.committed + stats.Shard_runner.aborted);
  check_int "per-partition rows" 2 (List.length stats.Shard_runner.per_partition);
  check "votes consistent across partitions" true
    (Shard_workload.Voter_shard.check_consistency w);
  Shard_workload.Voter_shard.stop w

let test_tpcc_shard () =
  let scale = { Tpcc.warehouses = 2; items = 200; customers_per_district = 8 } in
  let w = Shard_workload.Tpcc_shard.create ~scale ~seed:12 ~partitions:2 () in
  let stats =
    run_workload (Shard_workload.Tpcc_shard.next w) (Shard_workload.Tpcc_shard.router w) 300
  in
  check "most txns commit" true (stats.Shard_runner.committed > 200);
  check "cross-partition txns happened" true (stats.Shard_runner.multi > 0);
  check "ytd consistency holds on every partition" true
    (Shard_workload.Tpcc_shard.check_consistency w);
  Shard_workload.Tpcc_shard.stop w

let test_tpcc_shard_rejects_thin_scale () =
  check "fewer warehouses than partitions refused" true
    (match
       Shard_workload.Tpcc_shard.create
         ~scale:{ Tpcc.warehouses = 2; items = 50; customers_per_district = 3 }
         ~partitions:4 ()
     with
    | exception Invalid_argument _ -> true
    | w ->
      Shard_workload.Tpcc_shard.stop w;
      false)

let test_articles_shard () =
  let scale = { Articles.users = 200; initial_articles = 100; comments_per_article = 2 } in
  let w = Shard_workload.Articles_shard.create ~scale ~seed:13 ~partitions:2 () in
  let stats =
    run_workload (Shard_workload.Articles_shard.next w) (Shard_workload.Articles_shard.router w) 300
  in
  check "most txns commit" true (stats.Shard_runner.committed > 200);
  check "comment counts match comment rows" true
    (Shard_workload.Articles_shard.check_comment_counts w);
  Shard_workload.Articles_shard.stop w

let test_partition_of_warehouse_stable () =
  (* placement is a pure function of (partitions, warehouse) *)
  for w = 1 to 16 do
    check_int "stable" (Shard_workload.Tpcc_shard.partition_of_warehouse ~partitions:4 w)
      ((w - 1) mod 4)
  done

let test_sequential_determinism () =
  let run_once () =
    let scale = { Voter.default_scale with phone_numbers = 1_000 } in
    let w =
      Shard_workload.Voter_shard.create
        ~mode:(Router.Sequential (Xorshift.create 99))
        ~scale ~seed:21 ~partitions:3 ()
    in
    let stats =
      run_workload (Shard_workload.Voter_shard.next w) (Shard_workload.Voter_shard.router w) 400
    in
    Shard_workload.Voter_shard.stop w;
    ( stats.Shard_runner.committed,
      stats.Shard_runner.aborted,
      List.map
        (fun p -> (p.Shard_runner.pid, p.Shard_runner.committed, p.Shard_runner.aborted))
        stats.Shard_runner.per_partition )
  in
  let a = run_once () and b = run_once () in
  check "same seed, same outcome" true (a = b)

(* --- differential harness (Sequential mode vs oracle) --- *)

let test_shard_check_seeds () =
  List.iter
    (fun seed ->
      let o = Hi_check.Shard_check.run ~n:1_200 ~partitions:3 ~seed () in
      if o.Hi_check.Shard_check.violations <> [] then
        Alcotest.failf "seed %d: %s" seed (String.concat "\n  " o.Hi_check.Shard_check.violations);
      check "work happened" true (o.Hi_check.Shard_check.committed > 200);
      check "cross-partition schedules exercised" true (o.Hi_check.Shard_check.multi > 50))
    [ 1; 2; 3 ]

let test_shard_check_regression () =
  let o = Hi_check.Shard_check.regression ~seed:5 () in
  if o.Hi_check.Shard_check.violations <> [] then
    Alcotest.failf "pinned regression: %s" (String.concat "\n  " o.Hi_check.Shard_check.violations);
  check_int "commits" 3 o.Hi_check.Shard_check.committed;
  check_int "aborts" 3 o.Hi_check.Shard_check.aborted;
  check_int "multi-partition txns" 4 o.Hi_check.Shard_check.multi

(* Overlapping schedules: the concurrent harness's op-stream shape —
   bursts of cross-partition transfers and sprays over shared key sets —
   replayed under the deterministic Sequential scheduler against the
   exact oracle. *)
let test_shard_check_overlap_seeds () =
  List.iter
    (fun seed ->
      let o = Hi_check.Shard_check.run_overlap ~n:1_200 ~universe:24 ~partitions:3 ~seed () in
      if o.Hi_check.Shard_check.violations <> [] then
        Alcotest.failf "overlap seed %d: %s" seed
          (String.concat "\n  " o.Hi_check.Shard_check.violations);
      check "work happened" true (o.Hi_check.Shard_check.committed > 100);
      check "aborts exercised (collisions on shared keys)" true
        (o.Hi_check.Shard_check.aborted > 50);
      check "cross-partition schedules exercised" true (o.Hi_check.Shard_check.multi > 100))
    [ 1; 2; 3 ]

let test_shard_check_overlap_regression () =
  let o = Hi_check.Shard_check.overlap_regression ~seed:5 () in
  if o.Hi_check.Shard_check.violations <> [] then
    Alcotest.failf "pinned overlap regression: %s"
      (String.concat "\n  " o.Hi_check.Shard_check.violations);
  check_int "commits" 6 o.Hi_check.Shard_check.committed;
  check_int "aborts" 1 o.Hi_check.Shard_check.aborted;
  check_int "multi-partition txns" 6 o.Hi_check.Shard_check.multi

let () =
  Alcotest.run "shard"
    [
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "close drains then signals" `Quick test_mailbox_close_drains;
          Alcotest.test_case "cross-domain delivery" `Quick test_mailbox_cross_domain;
        ] );
      ( "future",
        [
          Alcotest.test_case "fill/await/poll" `Quick test_future_basic;
          Alcotest.test_case "cross-domain await" `Quick test_future_cross_domain;
        ] );
      ( "routing",
        [
          Alcotest.test_case "jump hash stable across resizes" `Quick test_jump_hash_stability;
          Alcotest.test_case "balance and determinism" `Quick test_route_balance;
        ] );
      ( "partition",
        [
          Alcotest.test_case "lifecycle and serial execution" `Quick test_partition_lifecycle;
          Alcotest.test_case "job failure surfaces at stop" `Quick test_partition_job_failure_surfaces;
        ] );
      ( "two-phase",
        [
          Alcotest.test_case "prepare/commit/abort" `Quick test_prepare_commit_abort;
          Alcotest.test_case "deferred merges run off the critical path" `Quick test_deferred_merge;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "multi-partition atomicity" `Quick test_multi_partition_atomicity;
          Alcotest.test_case "participant validation" `Quick test_multi_rejects_bad_participants;
        ] );
      ( "lock-order",
        [
          Alcotest.test_case "fast path bypasses locking" `Quick test_fast_path_bypasses_locks;
          Alcotest.test_case "acquisition validation" `Quick test_lock_acquisition_validation;
          Alcotest.test_case "abort releases all locks" `Quick test_abort_releases_locks;
          Alcotest.test_case "stop during in-flight 2PC" `Quick test_stop_during_inflight_2pc;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "voter sharded" `Quick test_voter_shard;
          Alcotest.test_case "tpcc sharded" `Quick test_tpcc_shard;
          Alcotest.test_case "tpcc thin scale refused" `Quick test_tpcc_shard_rejects_thin_scale;
          Alcotest.test_case "articles sharded" `Quick test_articles_shard;
          Alcotest.test_case "warehouse placement stable" `Quick test_partition_of_warehouse_stable;
          Alcotest.test_case "sequential mode deterministic" `Quick test_sequential_determinism;
        ] );
      ( "differential",
        [
          Alcotest.test_case "1200-op sequences vs oracle" `Quick test_shard_check_seeds;
          Alcotest.test_case "pinned regression" `Quick test_shard_check_regression;
          Alcotest.test_case "overlapping schedules vs oracle" `Quick
            test_shard_check_overlap_seeds;
          Alcotest.test_case "pinned overlap regression" `Quick
            test_shard_check_overlap_regression;
        ] );
    ]
