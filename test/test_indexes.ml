(* Tests for the four dynamic index structures (B+tree, Skip List,
   Masstree, ART): a generic conformance suite checked against the
   reference model, plus structure-specific invariants. *)

open Hi_index
open Hi_util

open Common


(* --- generic conformance suite --- *)

module Dyn_suite (D : Index_intf.DYNAMIC) = struct
  let test_empty () =
    let t = D.create () in
    Alcotest.(check (option int)) "find misses" None (D.find t "nope");
    check "mem misses" false (D.mem t "nope");
    check "delete misses" false (D.delete t "nope");
    Alcotest.(check pair_list) "scan empty" [] (D.scan_from t "" 10);
    check_int "no entries" 0 (D.entry_count t)

  let test_single () =
    let t = D.create () in
    D.insert t "alpha" 1;
    Alcotest.(check (option int)) "find hit" (Some 1) (D.find t "alpha");
    check "mem hit" true (D.mem t "alpha");
    check_int "one entry" 1 (D.entry_count t)

  let bulk_check keys =
    let t = D.create () in
    Array.iteri (fun i k -> D.insert t k i) keys;
    check_int "entry count" (Array.length keys) (D.entry_count t);
    Array.iteri
      (fun i k -> Alcotest.(check (option int)) ("find " ^ String.escaped k) (Some i) (D.find t k))
      keys;
    (* iteration yields keys in sorted order *)
    let seen = ref [] in
    D.iter_sorted t (fun k _ -> seen := k :: !seen);
    let seen = List.rev !seen in
    let expected = List.sort compare (Array.to_list keys) in
    Alcotest.(check (list string)) "sorted iteration" expected seen

  let test_bulk_rand () = bulk_check (Key_codec.generate_keys Key_codec.Rand_int 3_000)
  let test_bulk_mono () = bulk_check (Key_codec.generate_keys Key_codec.Mono_inc_int 3_000)
  let test_bulk_email () = bulk_check (Key_codec.generate_keys Key_codec.Email 3_000)

  let test_absent_lookups () =
    let keys = Key_codec.generate_keys ~seed:1 Key_codec.Rand_int 1_000 in
    let absent = Key_codec.generate_keys ~seed:2 Key_codec.Rand_int 1_000 in
    let t = D.create () in
    Array.iteri (fun i k -> D.insert t k i) keys;
    let present = Hashtbl.create 2048 in
    Array.iter (fun k -> Hashtbl.replace present k ()) keys;
    Array.iter
      (fun k -> if not (Hashtbl.mem present k) then check "absent key misses" false (D.mem t k))
      absent

  let test_update () =
    let t = D.create () in
    D.insert t "k" 1;
    check "update hit" true (D.update t "k" 2);
    Alcotest.(check (option int)) "updated" (Some 2) (D.find t "k");
    check "update miss" false (D.update t "absent" 3);
    check_int "update does not add entries" 1 (D.entry_count t)

  let test_multi_value () =
    let t = D.create () in
    D.insert t "k" 1;
    D.insert t "k" 2;
    D.insert t "k" 3;
    Alcotest.(check (list int)) "values in insertion order" [ 1; 2; 3 ] (D.find_all t "k");
    check_int "three entries" 3 (D.entry_count t);
    check "delete one value" true (D.delete_value t "k" 2);
    Alcotest.(check (list int)) "value removed" [ 1; 3 ] (D.find_all t "k");
    check "delete absent value" false (D.delete_value t "k" 9);
    check "delete key" true (D.delete t "k");
    Alcotest.(check (list int)) "all gone" [] (D.find_all t "k");
    check_int "empty" 0 (D.entry_count t)

  let test_delete_bulk () =
    let keys = Key_codec.generate_keys Key_codec.Rand_int 2_000 in
    let t = D.create () in
    Array.iteri (fun i k -> D.insert t k i) keys;
    (* delete every other key *)
    Array.iteri (fun i k -> if i mod 2 = 0 then check "deleted" true (D.delete t k)) keys;
    Array.iteri
      (fun i k ->
        if i mod 2 = 0 then check "gone" false (D.mem t k)
        else Alcotest.(check (option int)) "still present" (Some i) (D.find t k))
      keys;
    check_int "half remain" 1_000 (D.entry_count t)

  let test_scan () =
    let t = D.create () in
    for i = 0 to 99 do
      D.insert t (Printf.sprintf "key%03d" i) i
    done;
    let got = D.scan_from t "key050" 10 in
    let expected = List.init 10 (fun i -> (Printf.sprintf "key%03d" (i + 50), i + 50)) in
    Alcotest.(check pair_list) "scan window" expected got;
    (* probe between keys *)
    let got = D.scan_from t "key0505" 3 in
    let expected = List.init 3 (fun i -> (Printf.sprintf "key%03d" (i + 51), i + 51)) in
    Alcotest.(check pair_list) "scan from gap" expected got;
    check_int "scan past end" 0 (List.length (D.scan_from t "z" 5))

  let test_full_scan () =
    let t = D.create () in
    for i = 0 to 199 do
      D.insert t (Printf.sprintf "k%03d" i) i
    done;
    Alcotest.(check int) "scan from empty probe sees all" 200 (List.length (D.scan_from t "" 1_000));
    (* scans stop exactly at the requested count *)
    Alcotest.(check int) "scan bounded" 7 (List.length (D.scan_from t "" 7))

  let test_duplicate_heavy () =
    (* many values on few keys: splits inside runs of equal keys *)
    let t = D.create () in
    for i = 0 to 499 do
      D.insert t (Printf.sprintf "dup%d" (i mod 3)) i
    done;
    Alcotest.(check int) "entries" 500 (D.entry_count t);
    let vs = D.find_all t "dup1" in
    Alcotest.(check int) "values per key" 167 (List.length vs);
    (* insertion order preserved *)
    Alcotest.(check (list int)) "first values in order" [ 1; 4; 7 ]
      (match vs with a :: b :: c :: _ -> [ a; b; c ] | _ -> []);
    Alcotest.(check bool) "delete collapses run" true (D.delete t "dup1");
    Alcotest.(check int) "entries after delete" 333 (D.entry_count t)

  let test_clear () =
    let t = D.create () in
    for i = 0 to 99 do
      D.insert t (string_of_int i) i
    done;
    D.clear t;
    check_int "cleared" 0 (D.entry_count t);
    check "find misses after clear" false (D.mem t "5");
    D.insert t "5" 7;
    Alcotest.(check (option int)) "usable after clear" (Some 7) (D.find t "5")

  let test_memory_grows () =
    let t = D.create () in
    let m0 = D.memory_bytes t in
    let keys = Key_codec.generate_keys Key_codec.Rand_int 5_000 in
    Array.iteri (fun i k -> D.insert t k i) keys;
    check "memory grows with entries" true (D.memory_bytes t > m0)

  (* --- model-based random operations --- *)

  type op =
    | Insert of string * int
    | Update of string * int
    | Delete of string
    | Delete_value of string * int
    | Find of string
    | Find_all of string
    | Scan of string * int

  let key_gen =
    (* short alphabet so operations collide; lengths cross the 8-byte
       keyslice boundary to exercise Masstree layers and ART paths *)
    QCheck.Gen.(
      let* len = int_range 0 20 in
      string_size (return len) ~gen:(oneofl [ 'a'; 'b'; 'c' ]))

  let op_gen =
    QCheck.Gen.(
      let* k = key_gen in
      let* v = int_range 0 5 in
      oneof
        [
          return (Insert (k, v));
          return (Update (k, v));
          return (Delete k);
          return (Delete_value (k, v));
          return (Find k);
          return (Find_all k);
          (let* n = int_range 0 5 in
           return (Scan (k, n)));
        ])

  let print_op = function
    | Insert (k, v) -> Printf.sprintf "Insert(%S,%d)" k v
    | Update (k, v) -> Printf.sprintf "Update(%S,%d)" k v
    | Delete k -> Printf.sprintf "Delete(%S)" k
    | Delete_value (k, v) -> Printf.sprintf "DeleteValue(%S,%d)" k v
    | Find k -> Printf.sprintf "Find(%S)" k
    | Find_all k -> Printf.sprintf "FindAll(%S)" k
    | Scan (k, n) -> Printf.sprintf "Scan(%S,%d)" k n

  let ops_arb = QCheck.make ~print:QCheck.Print.(list print_op) QCheck.Gen.(list_size (int_range 0 200) op_gen)

  let dump_model m =
    let out = ref [] in
    Index_ref.iter_sorted m (fun k vs -> out := (k, Array.to_list vs) :: !out);
    List.rev !out

  let dump_dyn t =
    let out = ref [] in
    D.iter_sorted t (fun k vs -> out := (k, Array.to_list vs) :: !out);
    List.rev !out

  let model_test =
    QCheck.Test.make ~name:(D.name ^ " agrees with reference model") ~count:300 ops_arb (fun ops ->
        let t = D.create () in
        let m = Index_ref.create () in
        List.iter
          (fun op ->
            match op with
            | Insert (k, v) ->
              D.insert t k v;
              Index_ref.insert m k v
            | Update (k, v) ->
              let a = D.update t k v and b = Index_ref.update m k v in
              if a <> b then QCheck.Test.fail_reportf "update disagreement on %S" k
            | Delete k ->
              let a = D.delete t k and b = Index_ref.delete m k in
              if a <> b then QCheck.Test.fail_reportf "delete disagreement on %S" k
            | Delete_value (k, v) ->
              let a = D.delete_value t k v and b = Index_ref.delete_value m k v in
              if a <> b then QCheck.Test.fail_reportf "delete_value disagreement on %S" k
            | Find k ->
              let a = D.find t k and b = Index_ref.find m k in
              if a <> b then QCheck.Test.fail_reportf "find disagreement on %S" k
            | Find_all k ->
              let a = D.find_all t k and b = Index_ref.find_all m k in
              if a <> b then QCheck.Test.fail_reportf "find_all disagreement on %S" k
            | Scan (k, n) ->
              let a = D.scan_from t k n and b = Index_ref.scan_from m k n in
              if a <> b then QCheck.Test.fail_reportf "scan disagreement on %S" k)
          ops;
        if D.entry_count t <> Index_ref.entry_count m then
          QCheck.Test.fail_reportf "entry_count diverged: %d vs %d" (D.entry_count t) (Index_ref.entry_count m);
        dump_dyn t = dump_model m)

  let suite =
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "single" `Quick test_single;
      Alcotest.test_case "bulk random int" `Quick test_bulk_rand;
      Alcotest.test_case "bulk mono-inc int" `Quick test_bulk_mono;
      Alcotest.test_case "bulk email" `Quick test_bulk_email;
      Alcotest.test_case "absent lookups" `Quick test_absent_lookups;
      Alcotest.test_case "update" `Quick test_update;
      Alcotest.test_case "multi-value" `Quick test_multi_value;
      Alcotest.test_case "delete bulk" `Quick test_delete_bulk;
      Alcotest.test_case "scan" `Quick test_scan;
      Alcotest.test_case "full scan" `Quick test_full_scan;
      Alcotest.test_case "duplicate heavy" `Quick test_duplicate_heavy;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "memory grows" `Quick test_memory_grows;
      QCheck_alcotest.to_alcotest model_test;
    ]
end

module Btree_suite = Dyn_suite (Hi_btree.Btree)
module Skiplist_suite = Dyn_suite (Hi_skiplist.Skiplist)
module Masstree_suite = Dyn_suite (Hi_masstree.Masstree)
module Art_suite = Dyn_suite (Hi_art.Art)

(* --- structure-specific invariants --- *)

let test_btree_occupancy_random () =
  let t = Hi_btree.Btree.create () in
  let keys = Key_codec.generate_keys Key_codec.Rand_int 50_000 in
  Array.iteri (fun i k -> Hi_btree.Btree.insert t k i) keys;
  let occ = Hi_btree.Btree.leaf_occupancy t in
  (* paper §4.2: expected ~69 % for random insertion order *)
  check (Printf.sprintf "random occupancy %.2f in [0.60, 0.78]" occ) true (occ >= 0.60 && occ <= 0.78)

let test_btree_occupancy_mono () =
  let t = Hi_btree.Btree.create () in
  for i = 0 to 49_999 do
    Hi_btree.Btree.insert t (Key_codec.encode_int i) i
  done;
  let occ = Hi_btree.Btree.leaf_occupancy t in
  (* paper §6.4: sequential insertion leaves nodes ~50 % full *)
  check (Printf.sprintf "mono occupancy %.2f in [0.45, 0.60]" occ) true (occ >= 0.45 && occ <= 0.60)

let test_btree_memory_model () =
  let t = Hi_btree.Btree.create () in
  let n = 50_000 in
  let keys = Key_codec.generate_keys Key_codec.Rand_int n in
  Array.iteri (fun i k -> Hi_btree.Btree.insert t k i) keys;
  let per_key = float_of_int (Hi_btree.Btree.memory_bytes t) /. float_of_int n in
  (* 16 bytes of payload at ~69 % occupancy plus inner nodes: ~25 B/key *)
  check (Printf.sprintf "btree bytes/key %.1f in [20, 35]" per_key) true (per_key >= 20.0 && per_key <= 35.0)

let test_skiplist_occupancy () =
  let t = Hi_skiplist.Skiplist.create () in
  let keys = Key_codec.generate_keys Key_codec.Rand_int 50_000 in
  Array.iteri (fun i k -> Hi_skiplist.Skiplist.insert t k i) keys;
  let occ = Hi_skiplist.Skiplist.page_occupancy t in
  check (Printf.sprintf "skiplist occupancy %.2f in [0.60, 0.78]" occ) true (occ >= 0.60 && occ <= 0.78)

let test_art_occupancy () =
  let t = Hi_art.Art.create () in
  let keys = Key_codec.generate_keys Key_codec.Rand_int 50_000 in
  Array.iteri (fun i k -> Hi_art.Art.insert t k i) keys;
  let occ = Hi_art.Art.node_occupancy t in
  (* paper §4.2 reports ~51 % for random 64-bit keys *)
  check (Printf.sprintf "ART occupancy %.2f in [0.30, 0.75]" occ) true (occ >= 0.30 && occ <= 0.75)

let test_art_prefix_keys () =
  (* one key a strict prefix of another: needs the terminal-leaf path *)
  let t = Hi_art.Art.create () in
  Hi_art.Art.insert t "abc" 1;
  Hi_art.Art.insert t "abcdef" 2;
  Hi_art.Art.insert t "ab" 3;
  Alcotest.(check (option int)) "prefix 1" (Some 1) (Hi_art.Art.find t "abc");
  Alcotest.(check (option int)) "prefix 2" (Some 2) (Hi_art.Art.find t "abcdef");
  Alcotest.(check (option int)) "prefix 3" (Some 3) (Hi_art.Art.find t "ab");
  Alcotest.(check (option int)) "no partial" None (Hi_art.Art.find t "abcd");
  let got = Hi_art.Art.scan_from t "ab" 10 in
  Alcotest.(check pair_list) "ordered with prefixes" [ ("ab", 3); ("abc", 1); ("abcdef", 2) ] got

let test_art_node_growth () =
  (* >48 distinct bytes at one level forces N4 -> N16 -> N48 -> N256 *)
  let t = Hi_art.Art.create () in
  for c = 0 to 255 do
    Hi_art.Art.insert t (Printf.sprintf "%cpad" (Char.chr c)) c
  done;
  for c = 0 to 255 do
    Alcotest.(check (option int)) "find across growth" (Some c) (Hi_art.Art.find t (Printf.sprintf "%cpad" (Char.chr c)))
  done

let test_art_embedded_zero_bytes () =
  let t = Hi_art.Art.create () in
  let k1 = "a\000b" and k2 = "a\000" and k3 = "a" in
  Hi_art.Art.insert t k1 1;
  Hi_art.Art.insert t k2 2;
  Hi_art.Art.insert t k3 3;
  Alcotest.(check (option int)) "zero byte 1" (Some 1) (Hi_art.Art.find t k1);
  Alcotest.(check (option int)) "zero byte 2" (Some 2) (Hi_art.Art.find t k2);
  Alcotest.(check (option int)) "zero byte 3" (Some 3) (Hi_art.Art.find t k3)

let test_art_mono_prefix_compression () =
  (* monotonically increasing ints share long prefixes: ART must be much
     smaller than for random ints (paper §6.4, memory panel) *)
  let build keys =
    let t = Hi_art.Art.create () in
    Array.iteri (fun i k -> Hi_art.Art.insert t k i) keys;
    Hi_art.Art.memory_bytes t
  in
  let mono = build (Key_codec.generate_keys Key_codec.Mono_inc_int 20_000) in
  let rand = build (Key_codec.generate_keys Key_codec.Rand_int 20_000) in
  check (Printf.sprintf "mono %d < rand %d" mono rand) true (mono < rand)

let test_masstree_layers () =
  (* keys sharing an 8-byte slice force sub-layers *)
  let t = Hi_masstree.Masstree.create () in
  let keys = [ "AAAAAAAAsuffix1"; "AAAAAAAAsuffix2"; "AAAAAAAA"; "AAAAAAAAsuffix1extra" ] in
  List.iteri (fun i k -> Hi_masstree.Masstree.insert t k i) keys;
  List.iteri
    (fun i k -> Alcotest.(check (option int)) ("layer key " ^ k) (Some i) (Hi_masstree.Masstree.find t k))
    keys;
  let got = Hi_masstree.Masstree.scan_from t "AAAAAAAA" 10 in
  Alcotest.(check pair_list)
    "ordered across layers"
    [ ("AAAAAAAA", 2); ("AAAAAAAAsuffix1", 0); ("AAAAAAAAsuffix1extra", 3); ("AAAAAAAAsuffix2", 1) ]
    got

let test_masstree_short_and_empty_keys () =
  let t = Hi_masstree.Masstree.create () in
  List.iteri (fun i k -> Hi_masstree.Masstree.insert t k i) [ ""; "a"; "ab"; "abcdefgh"; "abcdefghi" ];
  Alcotest.(check (option int)) "empty key" (Some 0) (Hi_masstree.Masstree.find t "");
  Alcotest.(check (option int)) "exact 8" (Some 3) (Hi_masstree.Masstree.find t "abcdefgh");
  Alcotest.(check (option int)) "9 bytes" (Some 4) (Hi_masstree.Masstree.find t "abcdefghi")

let test_profile_art_fewer_ops () =
  (* Table 2's shape: ART touches far fewer nodes per point query *)
  let probe (module D : Index_intf.DYNAMIC) keys =
    let t = D.create () in
    Array.iteri (fun i k -> D.insert t k i) keys;
    Op_counter.reset ();
    let s0 = Op_counter.snapshot () in
    Array.iter (fun k -> ignore (D.find t k)) keys;
    Op_counter.diff s0 (Op_counter.snapshot ())
  in
  let keys = Key_codec.generate_keys Key_codec.Rand_int 20_000 in
  let b = probe (module Hi_btree.Btree) keys in
  let a = probe (module Hi_art.Art) keys in
  check "ART fewer key comparisons than B+tree" true (a.key_comparisons < b.key_comparisons)

(* --- hash index (Appendix A: the equality-only counterpart) --- *)

module HX = Hi_index.Hash_index

let test_hash_basic () =
  let t = HX.create () in
  HX.insert t "a" 1;
  HX.insert t "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (HX.find t "a");
  Alcotest.(check (option int)) "find b" (Some 2) (HX.find t "b");
  Alcotest.(check (option int)) "miss" None (HX.find t "c");
  HX.insert t "a" 9;
  Alcotest.(check (option int)) "replace" (Some 9) (HX.find t "a");
  check_int "count" 2 (HX.entry_count t)

let test_hash_bulk () =
  let t = HX.create () in
  let keys = Key_codec.generate_keys Key_codec.Rand_int 20_000 in
  Array.iteri (fun i k -> HX.insert t k i) keys;
  check_int "all inserted" 20_000 (HX.entry_count t);
  Array.iteri (fun i k -> Alcotest.(check (option int)) "hash find" (Some i) (HX.find t k)) keys;
  check "load factor bounded" true (HX.load_factor t <= 0.75)

let test_hash_delete () =
  let t = HX.create () in
  for i = 0 to 999 do
    HX.insert t (string_of_int i) i
  done;
  for i = 0 to 999 do
    if i mod 2 = 0 then check "deleted" true (HX.delete t (string_of_int i))
  done;
  check "delete absent" false (HX.delete t "0");
  for i = 0 to 999 do
    if i mod 2 = 0 then check "gone" false (HX.mem t (string_of_int i))
    else Alcotest.(check (option int)) "survivor" (Some i) (HX.find t (string_of_int i))
  done;
  check_int "half left" 500 (HX.entry_count t)

let test_hash_model =
  QCheck.Test.make ~name:"hash index agrees with Hashtbl" ~count:300
    QCheck.(list (pair (string_gen_of_size (QCheck.Gen.int_range 0 6) QCheck.Gen.printable) small_int))
    (fun ops ->
      let t = HX.create () in
      let m = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          if v mod 5 = 0 then begin
            ignore (HX.delete t k);
            Hashtbl.remove m k
          end
          else begin
            HX.insert t k v;
            Hashtbl.replace m k v
          end)
        ops;
      Hashtbl.fold (fun k v acc -> acc && HX.find t k = Some v) m (HX.entry_count t = Hashtbl.length m))

let () =
  Alcotest.run "indexes"
    [
      ("btree", Btree_suite.suite);
      ("skiplist", Skiplist_suite.suite);
      ("masstree", Masstree_suite.suite);
      ("art", Art_suite.suite);
      ( "btree-specific",
        [
          Alcotest.test_case "occupancy random ~69%" `Quick test_btree_occupancy_random;
          Alcotest.test_case "occupancy mono ~50%" `Quick test_btree_occupancy_mono;
          Alcotest.test_case "memory model" `Quick test_btree_memory_model;
        ] );
      ("skiplist-specific", [ Alcotest.test_case "occupancy" `Quick test_skiplist_occupancy ]);
      ( "art-specific",
        [
          Alcotest.test_case "occupancy" `Quick test_art_occupancy;
          Alcotest.test_case "prefix keys" `Quick test_art_prefix_keys;
          Alcotest.test_case "node growth to N256" `Quick test_art_node_growth;
          Alcotest.test_case "embedded zero bytes" `Quick test_art_embedded_zero_bytes;
          Alcotest.test_case "prefix compression" `Quick test_art_mono_prefix_compression;
        ] );
      ( "masstree-specific",
        [
          Alcotest.test_case "sub-layers" `Quick test_masstree_layers;
          Alcotest.test_case "short and empty keys" `Quick test_masstree_short_and_empty_keys;
        ] );
      ("profiling", [ Alcotest.test_case "ART fewer ops (Table 2 shape)" `Quick test_profile_art_fewer_ops ]);
      ( "hash-index",
        [
          Alcotest.test_case "basic" `Quick test_hash_basic;
          Alcotest.test_case "bulk" `Quick test_hash_bulk;
          Alcotest.test_case "delete with backward shift" `Quick test_hash_delete;
          QCheck_alcotest.to_alcotest test_hash_model;
        ] );
    ]
