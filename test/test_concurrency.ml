(* Concurrent stress tests for the lock-free-of-global-lock router
   (DESIGN.md §14): many client domains firing overlapping
   cross-partition transfers and sprays at a live Parallel router, with
   global-invariant checking, watchdog deadlock detection and seeded
   reproduction via Concurrent_check.

   Seeds: HI_CONC_SEED overrides the fixed base seed (CI nightly passes
   a time-based one); HI_CONC_SCHEDULES overrides how many seeded
   schedules the main sweep runs (default 500). *)

open Hi_check
open Common

let base_seed =
  match Sys.getenv_opt "HI_CONC_SEED" with Some s -> int_of_string s | None -> 0xC0FFEE

let schedules =
  match Sys.getenv_opt "HI_CONC_SCHEDULES" with Some s -> int_of_string s | None -> 500

(* The headline sweep: N seeded schedules against the live Parallel
   router, each checked for conservation, spray atomicity, negative
   balances and deadlock.  Any violation carries its reproducing seed. *)
let test_schedules_green () =
  let committed = ref 0 and aborted = ref 0 and multi = ref 0 in
  for i = 0 to schedules - 1 do
    let seed = base_seed + i in
    let o = Concurrent_check.run ~seed () in
    committed := !committed + o.committed;
    aborted := !aborted + o.aborted;
    multi := !multi + o.multi;
    if o.violations <> [] then
      Alcotest.failf "schedule %d violated invariants:\n  %s" seed
        (String.concat "\n  " o.violations)
  done;
  check "committed some" true (!committed > 0);
  check "aborted some (poison sprays, insufficient funds)" true (!aborted > 0);
  check "dispatched cross-partition txns" true (!multi > 0)

(* Schedules are pure functions of (cfg, seed): same seed reproduces the
   same op streams, different clients get different streams. *)
let test_generation_deterministic () =
  let cfg = Concurrent_check.default_config in
  let a = Concurrent_check.gen_client_ops cfg ~seed:base_seed ~client:0 in
  let b = Concurrent_check.gen_client_ops cfg ~seed:base_seed ~client:0 in
  let c = Concurrent_check.gen_client_ops cfg ~seed:base_seed ~client:1 in
  check "same seed, same client: identical" true (a = b);
  check "same seed, different client: distinct" true (a <> c)

(* The generator must actually produce the adversarial mix the harness
   claims: overlapping cross-partition ops and poisoned sprays. *)
let test_generation_adversarial () =
  let cfg = Concurrent_check.default_config in
  let ops =
    List.concat_map
      (fun c -> Concurrent_check.gen_client_ops cfg ~seed:base_seed ~client:c)
      (List.init cfg.clients Fun.id)
  in
  let multis = List.filter (Concurrent_check.is_multi cfg) ops in
  let poisoned =
    List.filter
      (function Concurrent_check.CSpray { poison = Some _; _ } -> true | _ -> false)
      ops
  in
  check "cross-partition ops present" true (List.length multis > 20);
  check "poisoned sprays present" true (List.length poisoned > 5)

(* A schedule that cannot finish in time must fail with its seed, not
   hang the suite.  Force it with a zero deadline; the harness leaks the
   still-running domains by design. *)
let test_watchdog_reports_hang () =
  let cfg = { Concurrent_check.default_config with timeout_s = 0.0 } in
  let o = Concurrent_check.run_schedule cfg ~seed:base_seed ~on_acked:(fun _ -> ()) () in
  check "watchdog fired" true
    (List.exists
       (fun v ->
         String.length v >= 8 && String.sub v 0 8 = "watchdog")
       o.violations)

(* One durable schedule: the coordinator decision log and per-partition
   WALs written under real concurrency, then recovered into a fresh
   router that must still satisfy conservation.  (The SIGKILL-mid-2PC
   variant lives in test_wal.ml.) *)
let test_durable_schedule_recovers () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hi_conc_durable_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let cfg = Concurrent_check.default_config in
  let o =
    Concurrent_check.run_schedule ~durability:(Hi_shard.Router.durability dir) cfg
      ~seed:(base_seed + 31_337) ~on_acked:(fun _ -> ()) ()
  in
  if o.violations <> [] then
    Alcotest.failf "durable schedule violated invariants:\n  %s"
      (String.concat "\n  " o.violations);
  (* recover the WAL directory into a fresh router and re-check *)
  let router =
    Hi_shard.Router.create ~durability:(Hi_shard.Router.durability dir)
      ~partitions:cfg.partitions ~init:(Concurrent_check.seed_accounts cfg) ()
  in
  let sweeps =
    List.init cfg.partitions (fun p -> Concurrent_check.sweep_partition cfg router p)
  in
  Hi_shard.Router.stop router;
  let seeded_sum = List.fold_left (fun a (s, _, _) -> a + s) 0 sweeps in
  let negatives = List.fold_left (fun a (_, n, _) -> a + n) 0 sweeps in
  check_int "conservation after recovery"
    (Concurrent_check.universe cfg * cfg.initial_balance)
    seeded_sum;
  check_int "no negative balances after recovery" 0 negatives

(* Shrinking reduces a failing configuration and reports the seed.  A
   zero deadline fails deterministically at every size, so the shrinker
   must walk down to its floor (2 clients, 10 ops). *)
let test_shrink_reports_minimal_config () =
  let cfg = { Concurrent_check.default_config with timeout_s = 0.0 } in
  let o = Concurrent_check.run ~cfg ~seed:base_seed () in
  check "violation reported" true (o.violations <> []);
  match o.violations with
  | header :: _ ->
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    check "header names the seed" true
      (contains_sub header (Printf.sprintf "HI_CONC_SEED=%d" base_seed));
    check "header names shrunk config" true (contains_sub header "clients=2")
  | [] -> Alcotest.fail "no violations"

let () =
  Concurrent_check.maybe_crash_child ();
  Alcotest.run "concurrency"
    [
      ( "harness",
        [
          Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "generation adversarial" `Quick test_generation_adversarial;
          Alcotest.test_case "watchdog reports hangs" `Quick test_watchdog_reports_hang;
          Alcotest.test_case "shrink reports minimal config" `Quick
            test_shrink_reports_minimal_config;
        ] );
      ( "schedules",
        [
          Alcotest.test_case
            (Printf.sprintf "%d seeded schedules green" schedules)
            `Quick test_schedules_green;
          Alcotest.test_case "durable schedule recovers" `Quick test_durable_schedule_recovers;
        ] );
    ]
