(* Tests for the three OLTP benchmarks (paper §7.2) and the YCSB
   microbenchmark driver (§6.1): each workload loads, runs transactions
   under every index configuration, and maintains its consistency
   invariants. *)

open Hi_hstore
open Hi_workloads

open Common

let tiny_tpcc = { Tpcc.warehouses = 2; items = 200; customers_per_district = 30 }
let tiny_voter = { Voter.default_scale with phone_numbers = 500 }
let tiny_articles = { Articles.users = 200; initial_articles = 100; comments_per_article = 2 }

let engine_with kind = Engine.create ~config:{ Engine.default_config with index_kind = kind } ()

(* --- TPC-C --- *)

let test_tpcc_load () =
  let engine = engine_with Engine.Btree_config in
  let _st = Tpcc.setup ~scale:tiny_tpcc engine in
  check "warehouses loaded" true (Table.row_count (Engine.table engine "warehouse") = 2);
  check "districts loaded" true (Table.row_count (Engine.table engine "district") = 20);
  check "customers loaded" true (Table.row_count (Engine.table engine "customer") = 600);
  check "stock loaded" true (Table.row_count (Engine.table engine "stock") = 400);
  check "initial consistency" true (Tpcc.check_ytd_consistency engine)

let run_tpcc kind n =
  let engine = engine_with kind in
  let st = Tpcc.setup ~scale:tiny_tpcc engine in
  for _ = 1 to n do
    ignore (Tpcc.transaction st engine)
  done;
  engine

let test_tpcc_run () =
  let engine = run_tpcc Engine.Btree_config 800 in
  let s = Engine.stats engine in
  check "most transactions commit" true (s.Engine.committed > 700);
  check "ytd consistency preserved" true (Tpcc.check_ytd_consistency engine);
  (* new-order grew the orders table beyond the initial load *)
  check "orders grew" true (Table.row_count (Engine.table engine "orders") > 600)

let test_tpcc_all_index_kinds () =
  List.iter
    (fun kind ->
      let engine = run_tpcc kind 300 in
      check
        (Engine.index_kind_name kind ^ " consistent")
        true (Tpcc.check_ytd_consistency engine))
    [ Engine.Btree_config; Engine.Hybrid_config; Engine.Hybrid_compressed_config ]

let test_tpcc_hybrid_saves_memory () =
  let index_bytes kind =
    let engine = run_tpcc kind 500 in
    Engine.flush_indexes engine;
    let m = Engine.memory_breakdown engine in
    m.Engine.pk_index_bytes + m.Engine.secondary_index_bytes
  in
  let btree = index_bytes Engine.Btree_config in
  let hybrid = index_bytes Engine.Hybrid_config in
  check (Printf.sprintf "hybrid %d < btree %d" hybrid btree) true (hybrid < btree)

(* --- Voter --- *)

let test_voter () =
  let engine = engine_with Engine.Btree_config in
  let st = Voter.setup ~scale:tiny_voter engine in
  for _ = 1 to 3_000 do
    ignore (Voter.transaction st engine)
  done;
  let s = Engine.stats engine in
  check "votes recorded" true (s.Engine.committed > 0);
  (* with 500 phones and limit 2, 3000 attempts must hit the limit *)
  check "vote limit enforced" true (s.Engine.user_aborts > 0);
  check "totals = vote rows" true (Voter.check_consistency engine);
  let votes = Table.row_count (Engine.table engine "votes") in
  check "no phone exceeds limit" true (votes <= 500 * 2)

let test_voter_no_secondary_indexes () =
  let engine = engine_with Engine.Btree_config in
  let _st = Voter.setup ~scale:tiny_voter engine in
  let m = Engine.memory_breakdown engine in
  check "voter uses no secondary indexes (Table 1)" true (m.Engine.secondary_index_bytes = 0)

(* --- Articles --- *)

let test_articles () =
  let engine = engine_with Engine.Btree_config in
  let st = Articles.setup ~scale:tiny_articles engine in
  for _ = 1 to 2_000 do
    ignore (Articles.transaction st engine)
  done;
  let s = Engine.stats engine in
  check "transactions commit" true (s.Engine.committed > 1_900);
  check "comment counts consistent" true (Articles.check_comment_counts engine st.Articles.next_article)

let test_articles_hybrid () =
  let engine = engine_with Engine.Hybrid_config in
  let st = Articles.setup ~scale:tiny_articles engine in
  for _ = 1 to 1_000 do
    ignore (Articles.transaction st engine)
  done;
  check "consistent under hybrid indexes" true
    (Articles.check_comment_counts engine st.Articles.next_article)

(* --- anti-caching end-to-end on a real workload --- *)

let test_voter_with_anticaching () =
  let config =
    {
      Engine.default_config with
      eviction_threshold_bytes = Some 100_000;
      evictable_tables = [ "votes" ];
      eviction_block_rows = 128;
    }
  in
  let engine = Engine.create ~config () in
  let st = Voter.setup ~scale:{ tiny_voter with phone_numbers = 20_000 } engine in
  for _ = 1 to 8_000 do
    ignore (Voter.transaction st engine)
  done;
  let votes = Engine.table engine "votes" in
  check "eviction happened" true (Table.evicted_rows votes > 0);
  check "still consistent" true (Voter.check_consistency engine)

(* --- runner --- *)

let test_runner_samples () =
  let engine = engine_with Engine.Btree_config in
  let st = Voter.setup ~scale:tiny_voter engine in
  let r =
    Runner.run engine
      ~transaction:(fun e -> match Voter.transaction st e with Ok _ -> true | Error _ -> false)
      ~num_txns:1_000 ~sample_every:250 ()
  in
  check "throughput positive" true (r.Runner.tps > 0.0);
  check "latency recorded" true (Hi_util.Histogram.count r.Runner.latency = 1_000);
  Alcotest.(check int) "samples taken" 4 (List.length r.Runner.samples);
  check "p50 <= p99" true
    (Hi_util.Histogram.median r.Runner.latency <= Hi_util.Histogram.percentile r.Runner.latency 99.0)

let test_runner_excludes_warmup () =
  (* warmup transactions run against the same engine, so the runner must
     report commit/abort deltas over the measured window only — totals
     used to include warmup work and break committed+aborts = txns *)
  let engine = engine_with Engine.Btree_config in
  let n = ref 0 in
  let transaction e =
    (* every 5th transaction aborts deterministically, in warmup and
       measurement alike *)
    incr n;
    Engine.run e (fun _ -> if !n mod 5 = 0 then raise (Engine.Abort "every 5th") else ())
  in
  let r = Runner.run engine ~transaction ~num_txns:400 ~warmup:150 () in
  check_int "txns reported" 400 r.Runner.txns;
  check_int "committed + aborts = txns" 400 (r.Runner.committed + r.Runner.user_aborts);
  check "aborts happened in the window" true (r.Runner.user_aborts > 0);
  check_int "no lost blocks without anti-caching" 0 r.Runner.lost_block_aborts;
  (* the engine's own totals still include warmup, as they should *)
  check_int "engine totals include warmup" 550
    ((Engine.stats engine).Engine.committed + (Engine.stats engine).Engine.user_aborts)

(* --- YCSB driver --- *)

let tiny_spec workload key_type =
  { Hi_ycsb.Ycsb.default_spec with workload; key_type; num_keys = 2_000; num_ops = 2_000 }

let test_ycsb_all_workloads () =
  List.iter
    (fun workload ->
      List.iter
        (fun key_type ->
          let r =
            Hi_ycsb.Ycsb.run
              (module Hybrid_index.Instances.Btree_index)
              (tiny_spec workload key_type)
          in
          check
            (Printf.sprintf "%s/%s runs" (Hi_ycsb.Ycsb.workload_name workload)
               (Hi_util.Key_codec.key_type_name key_type))
            true
            (r.Hi_ycsb.Ycsb.run_mops > 0.0 && r.Hi_ycsb.Ycsb.memory_bytes > 0))
        Hi_util.Key_codec.all_key_types)
    Hi_ycsb.Ycsb.all_workloads

let test_ycsb_hybrid_memory_shape () =
  (* Fig 7 memory panel at small scale: hybrid < original *)
  let spec = { (tiny_spec Hi_ycsb.Ycsb.Insert_only Hi_util.Key_codec.Rand_int) with num_keys = 20_000 } in
  let orig = Hi_ycsb.Ycsb.run (module Hybrid_index.Instances.Btree_index) spec in
  let hybrid = Hi_ycsb.Ycsb.run (Hybrid_index.Instances.hybrid_index "btree") spec in
  check
    (Printf.sprintf "hybrid %d < btree %d" hybrid.Hi_ycsb.Ycsb.memory_bytes orig.Hi_ycsb.Ycsb.memory_bytes)
    true
    (hybrid.Hi_ycsb.Ycsb.memory_bytes < orig.Hi_ycsb.Ycsb.memory_bytes)

let test_ycsb_secondary () =
  let spec = { (tiny_spec Hi_ycsb.Ycsb.Read_write Hi_util.Key_codec.Rand_int) with values_per_key = 10 } in
  let r = Hi_ycsb.Ycsb.run ~primary:false (module Hybrid_index.Instances.Btree_index) spec in
  check "secondary run completes" true (r.Hi_ycsb.Ycsb.run_mops > 0.0)

let () =
  Alcotest.run "workloads"
    [
      ( "tpcc",
        [
          Alcotest.test_case "load" `Quick test_tpcc_load;
          Alcotest.test_case "run 800 txns" `Quick test_tpcc_run;
          Alcotest.test_case "all index kinds" `Quick test_tpcc_all_index_kinds;
          Alcotest.test_case "hybrid saves memory" `Quick test_tpcc_hybrid_saves_memory;
        ] );
      ( "voter",
        [
          Alcotest.test_case "run + consistency" `Quick test_voter;
          Alcotest.test_case "no secondary indexes" `Quick test_voter_no_secondary_indexes;
          Alcotest.test_case "with anti-caching" `Quick test_voter_with_anticaching;
        ] );
      ( "articles",
        [
          Alcotest.test_case "run + consistency" `Quick test_articles;
          Alcotest.test_case "hybrid indexes" `Quick test_articles_hybrid;
        ] );
      ( "runner",
        [
          Alcotest.test_case "samples" `Quick test_runner_samples;
          Alcotest.test_case "warmup excluded from totals" `Quick test_runner_excludes_warmup;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "all workloads x key types" `Quick test_ycsb_all_workloads;
          Alcotest.test_case "hybrid memory shape" `Quick test_ycsb_hybrid_memory_shape;
          Alcotest.test_case "secondary mode" `Quick test_ycsb_secondary;
        ] );
    ]
