(* Helpers shared by every test executable in this directory; the dune
   (tests) stanza links the non-entry modules into each test binary. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let pair_list = Alcotest.(list (pair string int))

(* Register QCheck property tests as alcotest cases. *)
let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* Entries batch for STATIC.build / merge from an assoc list. *)
let entries_of_list l =
  Array.of_list (List.map (fun (k, vs) -> (k, Array.of_list vs)) (List.sort compare l))
