(* Tests for the five static-stage structures produced by the D-to-S rules:
   Compact B+tree, Compact Skip List, Compact Masstree, Compact ART and
   Compressed B+tree.  Each is checked against a Map-based model for
   build / lookup / scan / merge, including tombstone collection and both
   duplicate-resolution modes. *)

open Hi_index
open Hi_util

open Common

let keys_to_entries keys = Array.map (fun (i, k) -> (k, [| i |])) (Array.mapi (fun i k -> (i, k)) keys)

module Static_suite (S : Index_intf.STATIC) = struct
  let test_empty () =
    check "mem misses" false (S.mem S.empty "x");
    Alcotest.(check (option int)) "find misses" None (S.find S.empty "x");
    Alcotest.(check pair_list) "scan empty" [] (S.scan_from S.empty "" 5);
    check_int "no keys" 0 (S.key_count S.empty)

  let build_and_check keys =
    let entries = keys_to_entries keys in
    Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
    let s = S.build entries in
    check_int "key count" (Array.length entries) (S.key_count s);
    Array.iter
      (fun (k, vs) -> Alcotest.(check (option int)) ("find " ^ String.escaped k) (Some vs.(0)) (S.find s k))
      entries;
    (* iteration order *)
    let seen = ref [] in
    S.iter_sorted s (fun k _ -> seen := k :: !seen);
    Alcotest.(check (list string)) "sorted iteration" (Array.to_list (Array.map fst entries)) (List.rev !seen)

  let test_build_rand () = build_and_check (Key_codec.generate_keys Key_codec.Rand_int 3_000)
  let test_build_mono () = build_and_check (Key_codec.generate_keys Key_codec.Mono_inc_int 3_000)
  let test_build_email () = build_and_check (Key_codec.generate_keys Key_codec.Email 3_000)

  let test_absent () =
    let keys = Key_codec.generate_keys ~seed:1 Key_codec.Rand_int 1_000 in
    let entries = keys_to_entries keys in
    Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
    let s = S.build entries in
    let present = Hashtbl.create 2048 in
    Array.iter (fun k -> Hashtbl.replace present k ()) keys;
    Array.iter
      (fun k -> if not (Hashtbl.mem present k) then check "absent misses" false (S.mem s k))
      (Key_codec.generate_keys ~seed:2 Key_codec.Rand_int 1_000)

  let test_multi_values () =
    let s = S.build (entries_of_list [ ("a", [ 1; 2; 3 ]); ("b", [ 4 ]) ]) in
    Alcotest.(check (list int)) "find_all" [ 1; 2; 3 ] (S.find_all s "a");
    Alcotest.(check (option int)) "find first" (Some 1) (S.find s "a");
    check_int "entries counted" 4 (S.entry_count s);
    check_int "keys counted" 2 (S.key_count s)

  let test_update_in_place () =
    let s = S.build (entries_of_list [ ("a", [ 1; 2 ]); ("b", [ 3 ]) ]) in
    check "update hit" true (S.update s "a" 9);
    Alcotest.(check (list int)) "first value replaced" [ 9; 2 ] (S.find_all s "a");
    check "update miss" false (S.update s "zz" 0)

  let test_update_prefix_keys () =
    (* updates must reach entries stored as trie terminals and suffixes *)
    let s = S.build (entries_of_list [ ("ab", [ 1 ]); ("abcdefghij", [ 2 ]); ("abcdefghik", [ 3 ]) ]) in
    check "update prefix terminal" true (S.update s "ab" 10);
    check "update long suffix" true (S.update s "abcdefghij" 20);
    Alcotest.(check (option int)) "terminal updated" (Some 10) (S.find s "ab");
    Alcotest.(check (option int)) "suffix updated" (Some 20) (S.find s "abcdefghij");
    Alcotest.(check (option int)) "sibling untouched" (Some 3) (S.find s "abcdefghik")

  let test_scan () =
    let entries = Array.init 100 (fun i -> (Printf.sprintf "key%03d" i, [| i |])) in
    let s = S.build entries in
    let got = S.scan_from s "key050" 5 in
    Alcotest.(check pair_list)
      "scan window"
      (List.init 5 (fun i -> (Printf.sprintf "key%03d" (i + 50), i + 50)))
      got;
    let got = S.scan_from s "key0505" 2 in
    Alcotest.(check pair_list) "scan from gap" [ ("key051", 51); ("key052", 52) ] got;
    check_int "scan from start sees all" 100 (List.length (S.scan_from s "" 1000));
    check_int "scan past end" 0 (List.length (S.scan_from s "z" 5))

  let test_scan_multi_value () =
    let s = S.build (entries_of_list [ ("a", [ 1; 2 ]); ("b", [ 3 ]); ("c", [ 4; 5 ]) ]) in
    Alcotest.(check pair_list) "values expanded in scans" [ ("a", 1); ("a", 2); ("b", 3) ] (S.scan_from s "a" 3)

  let test_merge_basic () =
    let s = S.build (entries_of_list [ ("b", [ 2 ]); ("d", [ 4 ]) ]) in
    let s =
      S.merge s
        (entries_of_list [ ("a", [ 1 ]); ("c", [ 3 ]); ("e", [ 5 ]) ])
        ~mode:Index_intf.Replace
        ~deleted:(fun _ -> false)
    in
    check_int "all keys present" 5 (S.key_count s);
    List.iter
      (fun (k, v) -> Alcotest.(check (option int)) ("merged " ^ k) (Some v) (S.find s k))
      [ ("a", 1); ("b", 2); ("c", 3); ("d", 4); ("e", 5) ]

  let test_merge_replace () =
    let s = S.build (entries_of_list [ ("k", [ 1 ]); ("x", [ 7 ]) ]) in
    let s = S.merge s (entries_of_list [ ("k", [ 2 ]) ]) ~mode:Index_intf.Replace ~deleted:(fun _ -> false) in
    Alcotest.(check (list int)) "replaced" [ 2 ] (S.find_all s "k");
    Alcotest.(check (list int)) "untouched" [ 7 ] (S.find_all s "x")

  let test_merge_concat () =
    let s = S.build (entries_of_list [ ("k", [ 1; 2 ]) ]) in
    let s = S.merge s (entries_of_list [ ("k", [ 3 ]) ]) ~mode:Index_intf.Concat ~deleted:(fun _ -> false) in
    Alcotest.(check (list int)) "concatenated" [ 1; 2; 3 ] (S.find_all s "k")

  let test_merge_tombstones () =
    let s = S.build (entries_of_list [ ("a", [ 1 ]); ("b", [ 2 ]); ("c", [ 3 ]) ]) in
    let s = S.merge s (entries_of_list [ ("d", [ 4 ]) ]) ~mode:Index_intf.Replace ~deleted:(fun k -> k = "b") in
    check "tombstoned key dropped" false (S.mem s "b");
    check "survivors present" true (S.mem s "a" && S.mem s "c" && S.mem s "d");
    check_int "key count" 3 (S.key_count s)

  let test_merge_deleted_batch_survives () =
    (* regression (hi_check seed 876183): [deleted] applies only to the
       pre-existing static entries — a tombstoned key reinserted into the
       batch carries the only live copy and must survive the merge *)
    let s = S.build (entries_of_list [ ("k", [ 1 ]); ("x", [ 7 ]) ]) in
    let s =
      S.merge s (entries_of_list [ ("k", [ 3 ]) ]) ~mode:Index_intf.Replace ~deleted:(fun k -> k = "k")
    in
    Alcotest.(check (list int)) "batch copy survives its own tombstone" [ 3 ] (S.find_all s "k");
    Alcotest.(check (list int)) "bystander untouched" [ 7 ] (S.find_all s "x");
    check_int "key count" 2 (S.key_count s);
    (* same under Concat: the stale static values go, the batch values stay *)
    let c = S.build (entries_of_list [ ("k", [ 1; 2 ]) ]) in
    let c =
      S.merge c (entries_of_list [ ("k", [ 8; 9 ]) ]) ~mode:Index_intf.Concat ~deleted:(fun k -> k = "k")
    in
    Alcotest.(check (list int)) "concat keeps only batch values" [ 8; 9 ]
      (List.sort compare (S.find_all c "k"))

  let test_merge_into_empty () =
    let s = S.merge S.empty (entries_of_list [ ("a", [ 1 ]) ]) ~mode:Index_intf.Replace ~deleted:(fun _ -> false) in
    Alcotest.(check (option int)) "merge into empty" (Some 1) (S.find s "a")

  (* model-based merge sequence: repeated merges must equal a Map union *)
  let test_merge_model () =
    let rng = Xorshift.create 99 in
    let model = Hashtbl.create 512 in
    let s = ref S.empty in
    for _round = 1 to 8 do
      let batch =
        List.init 200 (fun _ ->
            let k = Printf.sprintf "k%05d" (Xorshift.int rng 2_000) in
            (k, [ Xorshift.int rng 1_000 ]))
      in
      (* deduplicate batch keys, keeping the last value *)
      let tbl = Hashtbl.create 256 in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) batch;
      let batch = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      List.iter (fun (k, v) -> Hashtbl.replace model k v) batch;
      s := S.merge !s (entries_of_list batch) ~mode:Index_intf.Replace ~deleted:(fun _ -> false)
    done;
    check_int "key count matches model" (Hashtbl.length model) (S.key_count !s);
    Hashtbl.iter (fun k v -> Alcotest.(check (list int)) ("model " ^ k) v (S.find_all !s k)) model

  (* merges whose keys cross the 8-byte keyslice boundary and share long
     prefixes: exercises multi-layer Masstree merges and deep ART paths *)
  let test_merge_model_long_keys () =
    let rng = Xorshift.create 7 in
    let model = Hashtbl.create 512 in
    let s = ref S.empty in
    for _round = 1 to 6 do
      let batch =
        List.init 150 (fun _ ->
            let k = Printf.sprintf "shared/prefix/%02d/item-%04d" (Xorshift.int rng 4) (Xorshift.int rng 800) in
            (k, [ Xorshift.int rng 1_000 ]))
      in
      let tbl = Hashtbl.create 256 in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) batch;
      let batch = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      List.iter (fun (k, v) -> Hashtbl.replace model k v) batch;
      s := S.merge !s (entries_of_list batch) ~mode:Index_intf.Replace ~deleted:(fun _ -> false)
    done;
    check_int "long-key count matches model" (Hashtbl.length model) (S.key_count !s);
    Hashtbl.iter (fun k v -> Alcotest.(check (list int)) ("long " ^ k) v (S.find_all !s k)) model;
    (* iteration must be sorted *)
    let prev = ref "" and sorted = ref true in
    S.iter_sorted !s (fun k _ ->
        if String.compare !prev k >= 0 && !prev <> "" then sorted := false;
        prev := k);
    check "long-key iteration sorted" true !sorted

  let test_merge_preserves_updates () =
    (* in-place value updates must survive in entries untouched by merges *)
    let s = S.build (entries_of_list [ ("a", [ 1 ]); ("m", [ 2 ]); ("z", [ 3 ]) ]) in
    ignore (S.update s "m" 99);
    let s = S.merge s (entries_of_list [ ("b", [ 4 ]) ]) ~mode:Index_intf.Replace ~deleted:(fun _ -> false) in
    Alcotest.(check (option int)) "update survived merge" (Some 99) (S.find s "m")

  let suite name =
    [
      Alcotest.test_case (name ^ " empty") `Quick test_empty;
      Alcotest.test_case (name ^ " build rand") `Quick test_build_rand;
      Alcotest.test_case (name ^ " build mono") `Quick test_build_mono;
      Alcotest.test_case (name ^ " build email") `Quick test_build_email;
      Alcotest.test_case (name ^ " absent") `Quick test_absent;
      Alcotest.test_case (name ^ " multi-values") `Quick test_multi_values;
      Alcotest.test_case (name ^ " update in place") `Quick test_update_in_place;
      Alcotest.test_case (name ^ " update prefix keys") `Quick test_update_prefix_keys;
      Alcotest.test_case (name ^ " scan") `Quick test_scan;
      Alcotest.test_case (name ^ " scan multi-value") `Quick test_scan_multi_value;
      Alcotest.test_case (name ^ " merge basic") `Quick test_merge_basic;
      Alcotest.test_case (name ^ " merge replace") `Quick test_merge_replace;
      Alcotest.test_case (name ^ " merge concat") `Quick test_merge_concat;
      Alcotest.test_case (name ^ " merge tombstones") `Quick test_merge_tombstones;
      Alcotest.test_case (name ^ " merge deleted batch survives") `Quick test_merge_deleted_batch_survives;
      Alcotest.test_case (name ^ " merge into empty") `Quick test_merge_into_empty;
      Alcotest.test_case (name ^ " merge model") `Quick test_merge_model;
      Alcotest.test_case (name ^ " merge model long keys") `Quick test_merge_model_long_keys;
      Alcotest.test_case (name ^ " merge preserves updates") `Quick test_merge_preserves_updates;
    ]
end

module CB = Static_suite (Hi_btree.Compact_btree)
module CS = Static_suite (Hi_skiplist.Compact_skiplist)
module CM = Static_suite (Hi_masstree.Compact_masstree)
module CA = Static_suite (Hi_art.Compact_art)
module CZ = Static_suite (Hi_btree.Compressed_btree)
module CF = Static_suite (Hi_btree.Frontcoded_btree)

(* --- D-to-S space claims (the Fig 5 shape) --- *)

let dynamic_memory (module D : Index_intf.DYNAMIC) keys =
  let t = D.create () in
  Array.iteri (fun i k -> D.insert t k i) keys;
  D.memory_bytes t

let static_memory (module S : Index_intf.STATIC) keys =
  let entries = keys_to_entries keys in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
  S.memory_bytes (S.build entries)

let test_compaction_saves key_type =
  let keys = Key_codec.generate_keys key_type 20_000 in
  let pairs =
    [
      ("btree", dynamic_memory (module Hi_btree.Btree) keys, static_memory (module Hi_btree.Compact_btree) keys);
      ( "skiplist",
        dynamic_memory (module Hi_skiplist.Skiplist) keys,
        static_memory (module Hi_skiplist.Compact_skiplist) keys );
      ( "masstree",
        dynamic_memory (module Hi_masstree.Masstree) keys,
        static_memory (module Hi_masstree.Compact_masstree) keys );
      ("art", dynamic_memory (module Hi_art.Art) keys, static_memory (module Hi_art.Compact_art) keys);
    ]
  in
  List.iter
    (fun (name, dyn, stat) ->
      check
        (Printf.sprintf "%s/%s: compact %d < dynamic %d" name (Key_codec.key_type_name key_type) stat dyn)
        true (stat < dyn))
    pairs

let test_frontcoded_between () =
  (* front coding pays off on shared-prefix keys; on incompressible random
     8-byte keys it may cost a little over the inline compact slots *)
  List.iter
    (fun kt ->
      let keys = Key_codec.generate_keys kt 20_000 in
      let compact = static_memory (module Hi_btree.Compact_btree) keys in
      let fronted = static_memory (module Hi_btree.Frontcoded_btree) keys in
      let bound = match kt with Key_codec.Rand_int -> compact * 6 / 5 | _ -> compact in
      check
        (Printf.sprintf "frontcoded %d within bound of compact %d (%s)" fronted compact
           (Key_codec.key_type_name kt))
        true (fronted <= bound))
    Key_codec.all_key_types;
  let email = Key_codec.generate_keys Key_codec.Email 20_000 in
  let compact = static_memory (module Hi_btree.Compact_btree) email in
  let fronted = static_memory (module Hi_btree.Frontcoded_btree) email in
  check
    (Printf.sprintf "frontcoded %d well below compact %d on emails" fronted compact)
    true
    (fronted * 5 < compact * 4)

let test_compressed_saves () =
  (* mono-inc keys compress well: compressed must beat compact *)
  let keys = Key_codec.generate_keys Key_codec.Mono_inc_int 20_000 in
  let compact = static_memory (module Hi_btree.Compact_btree) keys in
  let compressed = static_memory (module Hi_btree.Compressed_btree) keys in
  check (Printf.sprintf "compressed %d < compact %d (mono-inc)" compressed compact) true (compressed < compact)

let test_compressed_cache_effective () =
  let keys = Key_codec.generate_keys Key_codec.Rand_int 5_000 in
  let entries = keys_to_entries keys in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
  let s = Hi_btree.Compressed_btree.build entries in
  (* repeated point queries on one key must hit the node cache *)
  let k = fst entries.(42) in
  for _ = 1 to 100 do
    ignore (Hi_btree.Compressed_btree.find s k)
  done;
  check "few decompressions thanks to node cache" true (Hi_btree.Compressed_btree.decompressions s < 10)

let test_compact_read_not_slower_model () =
  (* Fig 5's read-throughput claim, expressed on the operation counters:
     the compact B+tree touches no more nodes per lookup than the dynamic
     B+tree at the same size *)
  let keys = Key_codec.generate_keys Key_codec.Rand_int 20_000 in
  let probe_dynamic () =
    let t = Hi_btree.Btree.create () in
    Array.iteri (fun i k -> Hi_btree.Btree.insert t k i) keys;
    Op_counter.reset ();
    let s0 = Op_counter.snapshot () in
    Array.iter (fun k -> ignore (Hi_btree.Btree.find t k)) keys;
    (Op_counter.diff s0 (Op_counter.snapshot ())).node_visits
  in
  let probe_static () =
    let entries = keys_to_entries keys in
    Array.sort (fun (a, _) (b, _) -> String.compare a b) entries;
    let s = Hi_btree.Compact_btree.build entries in
    Op_counter.reset ();
    let s0 = Op_counter.snapshot () in
    Array.iter (fun k -> ignore (Hi_btree.Compact_btree.find s k)) keys;
    (Op_counter.diff s0 (Op_counter.snapshot ())).node_visits
  in
  let d = probe_dynamic () and s = probe_static () in
  check (Printf.sprintf "compact visits %d <= dynamic visits %d" s d) true (s <= d)

let () =
  Alcotest.run "static"
    [
      ("compact-btree", CB.suite "cbt");
      ("compact-skiplist", CS.suite "csl");
      ("compact-masstree", CM.suite "cmt");
      ("compact-art", CA.suite "cart");
      ("compressed-btree", CZ.suite "zbt");
      ("frontcoded-btree", CF.suite "fbt");
      ( "d-to-s-rules",
        [
          Alcotest.test_case "compaction saves memory (rand)" `Quick (fun () ->
              test_compaction_saves Key_codec.Rand_int);
          Alcotest.test_case "compaction saves memory (mono)" `Quick (fun () ->
              test_compaction_saves Key_codec.Mono_inc_int);
          Alcotest.test_case "compaction saves memory (email)" `Quick (fun () ->
              test_compaction_saves Key_codec.Email);
          Alcotest.test_case "compression saves beyond compaction" `Quick test_compressed_saves;
          Alcotest.test_case "front coding between compact and compressed" `Quick test_frontcoded_between;
          Alcotest.test_case "node cache avoids decompressions" `Quick test_compressed_cache_effective;
          Alcotest.test_case "compact lookups visit fewer nodes" `Quick test_compact_read_not_slower_model;
        ] );
    ]
