(* Durability tests (DESIGN.md §13): the WAL codec and file layer, disk
   faults, group-commit ack deferral, and end-to-end recovery — clean
   restarts, crash images (a copied wal directory, the on-disk state an
   instant kill would leave), torn tails, and 2PC atomicity across
   partition logs. *)

open Common
open Hi_util
open Hi_hstore
open Hi_check
module Wal = Hi_wal.Wal
module Router = Hi_shard.Router
module Db = Hi_server.Db

let seed = 0x5EED_DA7A

(* -- scratch directories and crash images -------------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hi_wal_%s_%d_%d" name (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* Byte-copy a wal directory: the on-disk state a crash at this instant
   would leave behind (plus, possibly, an in-flight torn tail — which
   recovery must tolerate either way). *)
let crash_image src name =
  let dst = fresh_dir name in
  Array.iter
    (fun f ->
      let s = Wal_check.read_file (Filename.concat src f) in
      Wal_check.write_file (Filename.concat dst f) s)
    (Sys.readdir src);
  dst

(* -- seeded properties ---------------------------------------------------- *)

let prop_iters = 40

let run_prop name prop () =
  for iter = 0 to prop_iters - 1 do
    let s = seed + (7919 * iter) in
    let rng = Xorshift.create s in
    match prop rng with
    | Ok () -> ()
    | Error m -> Alcotest.fail (Printf.sprintf "%s (seed %d): %s" name s m)
  done

let dir_prop name prop () =
  let dir = fresh_dir name in
  run_prop name (fun rng -> prop ~dir rng) ()

(* -- disk faults ---------------------------------------------------------- *)

let payloads = [ "alpha"; "beta"; "gamma delta"; ""; "epsilon" ]

let test_fsync_failure () =
  let dir = fresh_dir "fsync" in
  let path = Filename.concat dir "wal.log" in
  let fault = Fault.create ~config:{ Fault.no_faults with fsync_fail_p = 1.0 } 7 in
  let w = Wal.create ~fault path in
  List.iter (Wal.append w) payloads;
  (match Wal.sync w with
  | _ -> Alcotest.fail "fsync fault did not raise"
  | exception Wal.Io_error _ -> ());
  Wal.close w;
  (* deterministically, the data reached the file — but the barrier
     failed, so the writer was told durability was NOT achieved *)
  let records, tail = Wal.read path in
  check "fsync-fail batch readable" true (records = payloads && tail = Wal.Clean);
  check "fault counted" true ((Fault.counters fault).Fault.fsync_failures_injected >= 1)

let test_torn_write () =
  let dir = fresh_dir "torn" in
  let path = Filename.concat dir "wal.log" in
  let fault = Fault.create ~config:{ Fault.no_faults with torn_write_p = 1.0 } 11 in
  let w = Wal.create ~fault path in
  List.iter (Wal.append w) payloads;
  (match Wal.sync w with
  | _ -> Alcotest.fail "torn-write fault did not raise"
  | exception Wal.Io_error _ -> ());
  Wal.close w;
  (* a byte-level prefix of the batch is on disk; the reader must
     surface only whole valid records *)
  let records, _ = Wal.read path in
  check "torn write leaves a record prefix" true
    (List.length records <= List.length payloads
    && records = Wal_check.prefix (List.length records) payloads);
  (* reopening truncates the torn tail and appending works again *)
  let survivors, _, w2 = Wal.open_log path in
  check "open_log agrees with read" true (survivors = records);
  Wal.append w2 "recovered";
  check_int "clean resync" 1 (Wal.sync w2);
  Wal.close w2;
  let records2, tail2 = Wal.read path in
  check "append after truncation" true
    (tail2 = Wal.Clean && records2 = survivors @ [ "recovered" ])

let test_short_write () =
  let dir = fresh_dir "short" in
  let path = Filename.concat dir "wal.log" in
  let fault = Fault.create ~config:{ Fault.no_faults with short_write_p = 1.0 } 13 in
  let w = Wal.create ~fault path in
  List.iter (Wal.append w) payloads;
  (match Wal.sync w with
  | _ -> Alcotest.fail "short-write fault did not raise"
  | exception Wal.Io_error _ -> ());
  Wal.close w;
  (* short writes cut at record boundaries: the file is a clean prefix *)
  let records, tail = Wal.read path in
  check "short write leaves whole records" true
    (tail = Wal.Clean && records = Wal_check.prefix (List.length records) payloads)

(* -- engine: group commit and ack deferral -------------------------------- *)

let engine_with_wal dir =
  let engine = Wal_check.fresh_engine () in
  let wal = Wal.create (Filename.concat dir "engine.log") in
  Engine.attach_wal engine wal;
  engine

let put engine k v =
  Engine.run engine (fun e -> Wal_check.apply_put e (Engine.table engine "kv") k v)

let test_ack_deferral () =
  let dir = fresh_dir "ack" in
  let engine = engine_with_wal dir in
  let fired = ref 0 in
  (match put engine "a" 1 with Ok () -> () | Error _ -> Alcotest.fail "put failed");
  Engine.on_durable engine (fun () -> incr fired);
  check_int "ack deferred until the barrier" 0 !fired;
  check_int "one pending ack" 1 (Engine.pending_acks engine);
  check_int "one record in the batch" 1 (Engine.sync_wal engine);
  check_int "ack released by sync" 1 !fired;
  (* nothing unsynced: acks fire immediately (read-only fast path) *)
  Engine.on_durable engine (fun () -> incr fired);
  check_int "immediate ack when durable" 2 !fired

let test_group_commit_batch () =
  let dir = fresh_dir "group" in
  let engine = engine_with_wal dir in
  List.iter
    (fun (k, v) -> match put engine k v with Ok () -> () | Error _ -> Alcotest.fail "put")
    [ ("a", 1); ("b", 2); ("c", 3) ];
  (* aborted transactions must not log *)
  (match
     Engine.run engine (fun e ->
         Wal_check.apply_put e (Engine.table engine "kv") "d" 4;
         raise (Engine.Abort "nope"))
   with
  | Ok () -> Alcotest.fail "abort committed"
  | Error _ -> ());
  check_int "three commits, one barrier" 3 (Engine.sync_wal engine);
  (* replay into a fresh engine: aborted write absent *)
  let records, _ = Wal.read (Filename.concat dir "engine.log") in
  let replica = Wal_check.fresh_engine () in
  ignore (Engine.replay replica ~decided:(fun _ -> false) records);
  check "replay state" true
    (Wal_check.dump (Engine.table replica "kv") = [ ("a", 1); ("b", 2); ("c", 3) ])

(* -- Db end-to-end recovery ----------------------------------------------- *)

let not_failed = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Db.error_to_string e)

let test_db_clean_restart () =
  let wal_dir = fresh_dir "db_clean" in
  let db = Db.create ~wal_dir ~partitions:2 () in
  for i = 0 to 29 do
    ignore (not_failed (Db.put db (Printf.sprintf "key%03d" i) (Db.Int i)))
  done;
  ignore (not_failed (Db.put db "pi" (Db.Float 3.14)));
  ignore (not_failed (Db.put db "name" (Db.Str "hybrid")));
  ignore (not_failed (Db.delete db "key007"));
  Db.close db;
  let db2 = Db.create ~wal_dir ~partitions:2 () in
  (match Db.recovery db2 with
  | None -> Alcotest.fail "no recovery report"
  | Some r -> check "recovery replayed txns" true (r.Router.replayed_txns >= 30));
  for i = 0 to 29 do
    let want = if i = 7 then None else Some (Db.Int i) in
    check "recovered value" true (not_failed (Db.get db2 (Printf.sprintf "key%03d" i)) = want)
  done;
  check "recovered float" true (not_failed (Db.get db2 "pi") = Some (Db.Float 3.14));
  check "recovered string" true (not_failed (Db.get db2 "name") = Some (Db.Str "hybrid"));
  (* writes keep working and surviving a second restart *)
  ignore (not_failed (Db.put db2 "after" (Db.Int 99)));
  Db.close db2;
  let db3 = Db.create ~wal_dir ~partitions:2 () in
  check "second-generation write" true (not_failed (Db.get db3 "after") = Some (Db.Int 99));
  Db.close db3

let test_db_crash_image () =
  let wal_dir = fresh_dir "db_crash" in
  let db = Db.create ~wal_dir ~partitions:2 () in
  for i = 0 to 49 do
    ignore (not_failed (Db.put db (Printf.sprintf "acked%03d" i) (Db.Int i)))
  done;
  (* every put above was acknowledged, so it must already be durable:
     a byte-copy of the wal directory is the crash image an instant
     SIGKILL would leave *)
  let image = crash_image wal_dir "db_crash_img" in
  let db2 = Db.create ~wal_dir:image ~partitions:2 () in
  for i = 0 to 49 do
    check "acked write survived the crash" true
      (not_failed (Db.get db2 (Printf.sprintf "acked%03d" i)) = Some (Db.Int i))
  done;
  Db.close db2;
  Db.close db

let test_db_checkpoint () =
  let wal_dir = fresh_dir "db_ckpt" in
  let db = Db.create ~wal_dir ~partitions:2 () in
  for i = 0 to 39 do
    ignore (not_failed (Db.put db (Printf.sprintf "ck%03d" i) (Db.Int i)))
  done;
  ignore (not_failed (Db.delete db "ck013"));
  check_int "both partitions checkpointed" 2 (Db.checkpoint db);
  (* post-checkpoint writes land in the (now truncated) logs *)
  ignore (not_failed (Db.put db "post" (Db.Str "ckpt")));
  Db.close db;
  let db2 = Db.create ~wal_dir ~partitions:2 () in
  (match Db.recovery db2 with
  | None -> Alcotest.fail "no recovery report"
  | Some r -> check_int "checkpoints loaded" 2 r.Router.checkpoints_loaded);
  for i = 0 to 39 do
    let want = if i = 13 then None else Some (Db.Int i) in
    check "checkpointed value" true (not_failed (Db.get db2 (Printf.sprintf "ck%03d" i)) = want)
  done;
  check "post-checkpoint write" true (not_failed (Db.get db2 "post") = Some (Db.Str "ckpt"));
  Db.close db2

(* Regression: the auto checkpoint used to skip any partition holding
   evicted rows, so under anti-caching the WAL grew without bound on
   exactly the cold workloads eviction targets.  Checkpoints now cover
   evicted rows (read non-destructively from their blocks): the log
   stays capped while rows are cold, and recovery restores every row. *)
let test_checkpoint_under_eviction () =
  let wal_dir = fresh_dir "evict_ckpt" in
  let config =
    {
      Engine.default_config with
      eviction_threshold_bytes = Some 4_096;
      evictable_tables = [ "kv" ];
    }
  in
  let checkpoint_bytes = 16 * 1024 in
  let partitions = 2 in
  let db = Db.create ~wal_dir ~config ~checkpoint_bytes ~partitions () in
  let value i = Db.Str (String.make 200 (Char.chr (Char.code 'a' + (i mod 26)))) in
  let n = 1500 in
  for i = 0 to n - 1 do
    ignore (not_failed (Db.put db (Printf.sprintf "ev%04d" i) (value i)))
  done;
  (* the workload must actually have spilled to the anti-cache *)
  let has_evicted p =
    let fut = Hi_shard.Future.create () in
    Hi_shard.Partition.post
      (Router.partition (Db.router db) p)
      (fun engine -> Hi_shard.Future.fill fut (Engine.has_evicted_rows engine));
    Hi_shard.Future.await fut
  in
  check "rows evicted" true (has_evicted 0 || has_evicted 1);
  (* ~150 KB of log was written per partition; auto checkpoints must
     have kept each log near the threshold despite the evicted rows *)
  for p = 0 to partitions - 1 do
    let log = Filename.concat wal_dir (Printf.sprintf "p%d.log" p) in
    let ckpt = Filename.concat wal_dir (Printf.sprintf "p%d.ckpt" p) in
    check "auto checkpoint ran" true (Sys.file_exists ckpt);
    check
      (Printf.sprintf "p%d log bounded" p)
      true
      ((Unix.stat log).Unix.st_size < 4 * checkpoint_bytes)
  done;
  Db.close db;
  (* recovery restores every row, hot and cold alike *)
  let db2 = Db.create ~wal_dir ~config ~checkpoint_bytes ~partitions () in
  for i = 0 to n - 1 do
    check "row survives" true
      (not_failed (Db.get db2 (Printf.sprintf "ev%04d" i)) = Some (value i))
  done;
  Db.close db2

let test_db_torn_tail () =
  let wal_dir = fresh_dir "db_torn" in
  let db = Db.create ~wal_dir ~partitions:2 () in
  for i = 0 to 19 do
    ignore (not_failed (Db.put db (Printf.sprintf "tt%03d" i) (Db.Int i)))
  done;
  Db.close db;
  (* simulate a crash mid-append: garbage bytes on one log's tail *)
  let p0 = Filename.concat wal_dir "p0.log" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 p0 in
  output_string oc "\x00\x00\x01\x00half-a-record";
  close_out oc;
  let db2 = Db.create ~wal_dir ~partitions:2 () in
  (match Db.recovery db2 with
  | None -> Alcotest.fail "no recovery report"
  | Some r -> check "torn tail truncated" true (r.Router.torn_tails >= 1));
  for i = 0 to 19 do
    check "data before the tear intact" true
      (not_failed (Db.get db2 (Printf.sprintf "tt%03d" i)) = Some (Db.Int i))
  done;
  Db.close db2

let test_wal_metrics_surfaced () =
  let dump = Hi_util.Metrics.dump () in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun m -> check ("metrics registry has " ^ m) true (contains dump m))
    [ "wal_appends"; "fsync_count"; "group_commit_batch"; "recovery_replay_seconds" ]

(* -- 2PC durability across partition logs --------------------------------- *)

let kv_router wal_dir =
  Router.create ~durability:(Router.durability wal_dir) ~partitions:2
    ~init:(fun _ engine -> ignore (Engine.create_table engine Wal_check.kv_schema))
    ()

let lookup router p k =
  match
    Router.single router ~partition:p (fun engine ->
        let tbl = Engine.table engine "kv" in
        match Table.find_by_pk tbl [ Value.Str k ] with
        | Some rowid -> Some (Value.as_int (Engine.read engine tbl rowid).(1))
        | None -> None)
  with
  | Ok v -> v
  | Error e -> Alcotest.fail (Engine.txn_error_to_string e)

let participant p k v : Router.participant =
  {
    Router.part = p;
    body = (fun engine -> Wal_check.apply_put engine (Engine.table engine "kv") k v);
  }

let test_2pc_commit_durable () =
  let wal_dir = fresh_dir "twopc_commit" in
  let router = kv_router wal_dir in
  (match Router.multi router [ participant 0 "left" 1; participant 1 "right" 2 ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Engine.txn_error_to_string e));
  (* the coordinator acknowledged: both sides must survive a crash NOW,
     before any further sync — the Prepare records and the Decide are
     already durable by protocol *)
  let image = crash_image wal_dir "twopc_commit_img" in
  let replica = kv_router image in
  check "left side recovered" true (lookup replica 0 "left" = Some 1);
  check "right side recovered" true (lookup replica 1 "right" = Some 2);
  Router.stop replica;
  Router.stop router

let test_2pc_abort_not_resurrected () =
  let wal_dir = fresh_dir "twopc_abort" in
  let router = kv_router wal_dir in
  let aborting : Router.participant =
    {
      Router.part = 1;
      body =
        (fun engine ->
          Wal_check.apply_put engine (Engine.table engine "kv") "doomed" 9;
          raise (Engine.Abort "2pc abort test"));
    }
  in
  (match Router.multi router [ participant 0 "ghost" 1; aborting ] with
  | Ok () -> Alcotest.fail "aborting 2PC transaction committed"
  | Error _ -> ());
  check "live abort rolled back" true (lookup router 0 "ghost" = None);
  (* partition 0's log may hold a durable Prepare for the aborted txn;
     with no Decide in the coordinator log, recovery must presume abort
     — the write must NOT come back from the dead *)
  let image = crash_image wal_dir "twopc_abort_img" in
  let replica = kv_router image in
  check "aborted prepare not resurrected" true (lookup replica 0 "ghost" = None);
  check "aborting side absent" true (lookup replica 1 "doomed" = None);
  (match Router.recovery replica with
  | None -> Alcotest.fail "no recovery report"
  | Some r -> check "undecided prepare skipped" true (r.Router.skipped_undecided >= 1));
  Router.stop replica;
  (* committed transactions around the abort still recover *)
  (match Router.multi router [ participant 0 "solid" 5; participant 1 "rock" 6 ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Engine.txn_error_to_string e));
  let image2 = crash_image wal_dir "twopc_abort_img2" in
  let replica2 = kv_router image2 in
  check "later commit recovered" true (lookup replica2 0 "solid" = Some 5);
  check "later commit recovered (right)" true (lookup replica2 1 "rock" = Some 6);
  Router.stop replica2;
  Router.stop router

(* SIGKILL mid-2PC under real concurrency (DESIGN.md §14): re-exec this
   binary as a crash child driving the concurrent harness against a
   durable router, kill it mid-traffic once enough sprays are durably
   acknowledged, recover the wal directory, and audit — every acked
   spray fully present, no partial commit, seeded conservation intact. *)
let test_2pc_sigkill_under_concurrency () =
  let dir = fresh_dir "conc_crash" in
  let o = Concurrent_check.crash_run ~dir ~seed () in
  if o.crash_violations <> [] then
    Alcotest.failf "crash audit failed:\n  %s" (String.concat "\n  " o.crash_violations);
  check "sprays were acked before the kill" true (o.acked_sprays >= 30);
  check_int "no acked spray lost" 0 o.lost_sprays;
  check "recovery replayed work" true (o.recovery.replayed_txns > 0)

(* -- suite ---------------------------------------------------------------- *)

let () =
  Concurrent_check.maybe_crash_child ();
  Alcotest.run "wal"
    [
      ( "codec",
        [ Alcotest.test_case "record roundtrip" `Quick (run_prop "roundtrip" Wal_check.record_roundtrip) ] );
      ( "file",
        [
          Alcotest.test_case "file roundtrip" `Quick (dir_prop "file_roundtrip" Wal_check.file_roundtrip);
          Alcotest.test_case "truncated tail" `Quick (dir_prop "truncated_tail" Wal_check.truncated_tail);
          Alcotest.test_case "corrupt byte" `Quick (dir_prop "corrupt_byte" Wal_check.corrupt_byte);
        ] );
      ( "faults",
        [
          Alcotest.test_case "fsync failure" `Quick test_fsync_failure;
          Alcotest.test_case "torn write" `Quick test_torn_write;
          Alcotest.test_case "short write" `Quick test_short_write;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ack deferral" `Quick test_ack_deferral;
          Alcotest.test_case "group commit batch" `Quick test_group_commit_batch;
          Alcotest.test_case "crash-point differential" `Quick
            (dir_prop "crash_points" Wal_check.crash_points);
        ] );
      ( "db",
        [
          Alcotest.test_case "clean restart" `Quick test_db_clean_restart;
          Alcotest.test_case "crash image" `Quick test_db_crash_image;
          Alcotest.test_case "checkpoint" `Quick test_db_checkpoint;
          Alcotest.test_case "checkpoint under eviction" `Quick test_checkpoint_under_eviction;
          Alcotest.test_case "torn tail" `Quick test_db_torn_tail;
          Alcotest.test_case "metrics surfaced" `Quick test_wal_metrics_surfaced;
        ] );
      ( "twopc",
        [
          Alcotest.test_case "commit durable" `Quick test_2pc_commit_durable;
          Alcotest.test_case "abort not resurrected" `Quick test_2pc_abort_not_resurrected;
          Alcotest.test_case "sigkill under concurrency" `Quick
            test_2pc_sigkill_under_concurrency;
        ] );
    ]
