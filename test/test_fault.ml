(* Fault-injection and crash-recovery tests for the anti-caching storage
   path (DESIGN.md §8): checksummed block store, transient-fault retry,
   graceful degradation on corrupt/missing blocks, the abort-and-restart
   protocol, and index reconstruction via Engine.recover.

   Every test is deterministic: fault schedules are seeded through
   Hi_util.Fault and all sleeps are injected as no-ops, so the suite runs
   without wall-clock stalls. *)

open Hi_hstore
open Value

open Common

let no_sleep _ = ()

(* Block-store config for tests: no latency, no backoff delay. *)
let ac_config ?fault ?(max_retries = 4) () =
  { Anticache.default_config with fetch_penalty_s = 0.0; backoff_base_s = 0.0; max_retries; fault }

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", TInt); ("owner", TStr 16); ("balance", TInt) ]
    ~pk:[ "id" ]
    ~secondary:[ ("accounts_owner_idx", [ "owner"; "id" ], false) ]
    ()

let engine_config ?fault ?(threshold = 40_000) () =
  {
    Engine.default_config with
    eviction_threshold_bytes = Some threshold;
    evictable_tables = [ "accounts" ];
    eviction_block_rows = 64;
    anticache = ac_config ?fault ();
  }

(* Insert [n] accounts, one transaction each so the eviction manager runs. *)
let fill engine tbl n =
  for i = 1 to n do
    ignore
      (Engine.run engine (fun e ->
           ignore (Engine.insert e tbl [| Int i; Str (Printf.sprintf "owner%d" (i mod 10)); Int i |])))
  done

let assert_clean engine =
  match Engine.verify_integrity engine with
  | [] -> ()
  | vs -> Alcotest.failf "integrity violations: %s" (String.concat "; " vs)

(* --- block store --- *)

let test_block_roundtrip () =
  let ac = Anticache.create ~config:(ac_config ()) ~sleep:no_sleep () in
  let rows =
    [| (3, [| Int 42; Str "hello"; Float 2.5; Null |]); (9, [| Int (-7); Str ""; Float nan; Int max_int |]) |]
  in
  let id = Anticache.write_block ac ~table:"t" ~rows ~bytes:128 in
  check_int "modelled disk bytes" 128 (Anticache.disk_bytes ac);
  check "physical bytes tracked" true (Anticache.physical_bytes ac > 0);
  let b = Anticache.fetch_block ac id in
  check "table name survives" true (b.Anticache.block_table = "t");
  check_int "modelled bytes survive" 128 b.Anticache.block_bytes;
  check_int "row count" 2 (Array.length b.Anticache.block_rows);
  let rowid0, vals0 = b.Anticache.block_rows.(0) in
  check_int "rowid" 3 rowid0;
  check "int value" true (vals0.(0) = Int 42);
  check "str value" true (vals0.(1) = Str "hello");
  check "float value" true (vals0.(2) = Float 2.5);
  check "null value" true (vals0.(3) = Null);
  let _, vals1 = b.Anticache.block_rows.(1) in
  check "nan roundtrips" true (match vals1.(2) with Float f -> Float.is_nan f | _ -> false);
  check "max_int roundtrips" true (vals1.(3) = Int max_int);
  check_int "disk empty after fetch" 0 (Anticache.disk_bytes ac);
  check_int "physical empty after fetch" 0 (Anticache.physical_bytes ac)

let test_corrupt_block_detected () =
  let ac = Anticache.create ~config:(ac_config ()) ~sleep:no_sleep () in
  let id = Anticache.write_block ac ~table:"t" ~rows:[| (1, [| Int 1 |]) |] ~bytes:32 in
  Anticache.corrupt_block_for_test ac id;
  (match Anticache.fetch_block ac id with
  | _ -> Alcotest.fail "corrupt block delivered"
  | exception Anticache.Fetch_failed { error = Anticache.Corrupt; block; _ } ->
    check_int "failing block id" id block);
  let s = Anticache.stats ac in
  check_int "corruption counted" 1 s.Anticache.corrupt_blocks;
  check_int "block counted lost" 1 s.Anticache.lost_blocks;
  check "block dropped from store" false (Anticache.mem_block ac id);
  check_int "disk accounting released" 0 (Anticache.disk_bytes ac)

let test_transient_faults_retried () =
  (* 30% of fetch attempts fail transiently; with 4 retries every block
     still comes back, and the retry counter records the recoveries *)
  let fault = { Hi_util.Fault.no_faults with transient_fetch_p = 0.3 } in
  let ac = Anticache.create ~config:(ac_config ~fault ()) ~sleep:no_sleep () in
  let ids =
    List.init 50 (fun i -> (i, Anticache.write_block ac ~table:"t" ~rows:[| (i, [| Int i |]) |] ~bytes:16))
  in
  List.iter
    (fun (i, id) ->
      let b = Anticache.fetch_block ac id in
      check "payload intact" true (snd b.Anticache.block_rows.(0) = [| Int i |]))
    ids;
  let s = Anticache.stats ac in
  check "transient faults observed" true (s.Anticache.transient_faults > 0);
  check "retries performed" true (s.Anticache.retries > 0);
  check_int "all fetches delivered" 50 s.Anticache.fetches;
  check_int "zero blocks lost" 0 s.Anticache.lost_blocks

let test_retry_budget_exhausted () =
  (* a device that always fails: the fetch gives up after 1 + max_retries
     attempts, and the block stays intact on disk *)
  let fault = { Hi_util.Fault.no_faults with transient_fetch_p = 1.0 } in
  let ac = Anticache.create ~config:(ac_config ~fault ~max_retries:2 ()) ~sleep:no_sleep () in
  let id = Anticache.write_block ac ~table:"t" ~rows:[| (1, [| Int 1 |]) |] ~bytes:16 in
  (match Anticache.fetch_block ac id with
  | _ -> Alcotest.fail "fetch should fail"
  | exception Anticache.Fetch_failed { error = Anticache.Transient; attempts; _ } ->
    check_int "attempts = 1 + max_retries" 3 attempts);
  check "block still on disk" true (Anticache.mem_block ac id);
  check_int "not counted lost" 0 (Anticache.stats ac).Anticache.lost_blocks

let test_backoff_is_exponential () =
  let fault = { Hi_util.Fault.no_faults with transient_fetch_p = 1.0 } in
  let config =
    { (ac_config ~fault ~max_retries:3 ()) with backoff_base_s = 0.1; fetch_penalty_s = 0.0 }
  in
  let sleeps = ref [] in
  let ac = Anticache.create ~config ~sleep:(fun s -> sleeps := s :: !sleeps) () in
  let id = Anticache.write_block ac ~table:"t" ~rows:[| (1, [| Int 1 |]) |] ~bytes:16 in
  (try ignore (Anticache.fetch_block ac id) with Anticache.Fetch_failed _ -> ());
  (* zero-penalty fetches sleep only for backoff: 0.1, 0.2, 0.4 *)
  Alcotest.(check (list (float 1e-9))) "doubling backoff" [ 0.1; 0.2; 0.4 ] (List.rev !sleeps)

let test_latency_spikes_paid () =
  let fault = { Hi_util.Fault.no_faults with latency_spike_p = 1.0; latency_spike_s = 0.05 } in
  let config = { (ac_config ~fault ()) with fetch_penalty_s = 0.001 } in
  let sleeps = ref [] in
  let ac = Anticache.create ~config ~sleep:(fun s -> sleeps := s :: !sleeps) () in
  let id = Anticache.write_block ac ~table:"t" ~rows:[| (1, [| Int 1 |]) |] ~bytes:16 in
  ignore (Anticache.fetch_block ac id);
  Alcotest.(check (list (float 1e-9))) "penalty + spike" [ 0.051 ] !sleeps;
  check_int "spike counted" 1 (Anticache.stats ac).Anticache.latency_spikes

(* --- engine under injected faults (acceptance scenarios) --- *)

(* Read account [i] through a transaction; distinguishes every outcome. *)
let read_account engine tbl i =
  Engine.run engine (fun e ->
      match Table.find_by_pk tbl [ Int i ] with
      | Some rowid -> Some (as_int (Engine.read e tbl rowid).(2))
      | None -> None)

let test_workload_survives_transient_faults () =
  (* every block fetch has a 20% transient failure rate; the workload must
     complete with zero data loss *)
  let fault = { Hi_util.Fault.no_faults with transient_fetch_p = 0.2 } in
  let engine = Engine.create ~config:(engine_config ~fault ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 2_000;
  check "rows evicted" true (Table.evicted_rows tbl > 0);
  let rec read_retrying i budget =
    match read_account engine tbl i with
    | Ok v -> v
    | Error (Engine.Txn_block_unavailable _) when budget > 0 ->
      (* retryable by contract: the block is intact on disk *)
      read_retrying i (budget - 1)
    | Error e -> Alcotest.failf "row %d: %s" i (Engine.txn_error_to_string e)
  in
  for i = 1 to 2_000 do
    check "correct value, zero data loss" true (read_retrying i 10 = Some i)
  done;
  let s = Engine.fault_stats engine in
  check "transient faults hit" true (s.Anticache.transient_faults > 0);
  check "retries absorbed them" true (s.Anticache.retries > 0);
  check_int "no blocks lost" 0 s.Anticache.lost_blocks;
  check_int "no lost-block aborts" 0 (Engine.stats engine).Engine.lost_block_aborts;
  assert_clean engine

let test_corrupt_block_degrades_gracefully () =
  let engine = Engine.create ~config:(engine_config ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 2_000;
  check "rows evicted" true (Table.evicted_rows tbl > 0);
  (* corrupt one on-disk block at rest *)
  let ac = Engine.anticache engine in
  let victim = List.hd (Anticache.block_ids ac) in
  let victim_rows =
    match Anticache.read_block ac victim with
    | Ok b -> Array.length b.Anticache.block_rows
    | Error _ -> Alcotest.fail "victim block unreadable before corruption"
  in
  Anticache.corrupt_block_for_test ac victim;
  let lost_errors = ref 0 and misses = ref 0 and hits = ref 0 in
  for i = 1 to 2_000 do
    match read_account engine tbl i with
    | Ok (Some v) ->
      incr hits;
      check_int "served value is correct" i v
    | Ok None -> incr misses (* row purged with the dead block *)
    | Error (Engine.Txn_block_lost { cause = Anticache.Corrupt; block; _ }) ->
      incr lost_errors;
      check_int "typed error names the corrupt block" victim block
    | Error e -> Alcotest.failf "row %d: %s" i (Engine.txn_error_to_string e)
  done;
  (* exactly one transaction hit the corruption; its block's rows were
     dropped, everything else kept serving *)
  check_int "one typed corruption error" 1 !lost_errors;
  check "dead rows surfaced as misses" true (!misses > 0);
  check "engine kept serving the rest" true (!hits > 0);
  check_int "every row accounted for" 2_000 (!hits + !misses + !lost_errors);
  (* the aborted probe plus every miss = exactly the dead block's rows *)
  check_int "lost rows match the dropped block" victim_rows (!misses + 1);
  let s = Engine.fault_stats engine in
  check_int "checksum mismatch counted" 1 s.Anticache.corrupt_blocks;
  check_int "block counted in lost_blocks" 1 s.Anticache.lost_blocks;
  check_int "abort counted" 1 (Engine.stats engine).Engine.lost_block_aborts;
  assert_clean engine

let test_missing_block_degrades_gracefully () =
  let engine = Engine.create ~config:(engine_config ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 2_000;
  let ac = Engine.anticache engine in
  let victim = List.hd (Anticache.block_ids ac) in
  (* the cold store silently lost a block *)
  Anticache.drop_block ac victim;
  let lost_errors = ref 0 in
  for i = 1 to 2_000 do
    match read_account engine tbl i with
    | Ok _ -> ()
    | Error (Engine.Txn_block_lost { cause = Anticache.Missing; _ }) -> incr lost_errors
    | Error e -> Alcotest.failf "row %d: %s" i (Engine.txn_error_to_string e)
  done;
  check_int "one typed missing-block error" 1 !lost_errors;
  assert_clean engine

let test_recover_after_corruption () =
  let engine = Engine.create ~config:(engine_config ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 2_000;
  let ac = Engine.anticache engine in
  let victim = List.hd (Anticache.block_ids ac) in
  Anticache.corrupt_block_for_test ac victim;
  (* offline repair instead of waiting for a transaction to trip over it *)
  let r = Engine.recover engine in
  check_int "one table recovered" 1 r.Engine.tables_recovered;
  check_int "one block dropped" 1 r.Engine.dropped_blocks;
  check "dropped rows counted" true (r.Engine.dropped_rows > 0);
  check "live rows rebuilt" true (r.Engine.recovered_live > 0);
  check "evicted tombstones rebuilt" true (r.Engine.recovered_evicted > 0);
  check_int "row accounting consistent" 2_000
    (r.Engine.recovered_live + r.Engine.recovered_evicted + r.Engine.dropped_rows);
  assert_clean engine;
  (* the surviving data — live and evicted — still serves correctly *)
  let served = ref 0 in
  for i = 1 to 2_000 do
    match read_account engine tbl i with
    | Ok (Some v) ->
      incr served;
      check_int "value correct after recovery" i v
    | Ok None -> () (* dropped with the corrupt block *)
    | Error e -> Alcotest.failf "row %d after recovery: %s" i (Engine.txn_error_to_string e)
  done;
  check_int "survivors = total - dropped" (2_000 - r.Engine.dropped_rows) !served;
  check_int "no further lost-block aborts" 0 (Engine.stats engine).Engine.lost_block_aborts

let test_recover_rebuilds_secondary_indexes () =
  let engine = Engine.create ~config:(engine_config ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 2_000;
  check "rows evicted" true (Table.evicted_rows tbl > 0);
  let r = Engine.recover engine in
  check_int "nothing dropped on a healthy store" 0 r.Engine.dropped_rows;
  assert_clean engine;
  (* secondary index rebuilt over live + evicted rows: owner3 owns
     ids 3, 13, ..., 1993 *)
  let rowids =
    Table.scan_prefix_eq (Table.index_exn tbl "accounts_owner_idx") ~prefix:[ Str "owner3" ] ~limit:10_000
  in
  check_int "secondary entries rebuilt" 200 (List.length rowids);
  for i = 1 to 2_000 do
    check "pk entry rebuilt" true (Table.find_by_pk tbl [ Int i ] <> None)
  done

(* --- abort-and-restart protocol --- *)

let test_restart_limit_exhausted () =
  let engine = Engine.create ~config:(engine_config ~threshold:1_000_000 ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 10;
  let rowid = match Table.find_by_pk tbl [ Int 1 ] with Some r -> r | None -> assert false in
  (* a pathological transaction that re-evicts the row it is about to
     read: every attempt trips Evicted_access until the budget runs out *)
  let r =
    Engine.run engine (fun e ->
        ignore (Table.evict_rows tbl (Engine.anticache e) [ rowid ]);
        ignore (Engine.read e tbl rowid))
  in
  check "restart limit surfaced" true (r = Error (Engine.Txn_restart_limit 32));
  check_int "every restart counted" 33 (Engine.stats engine).Engine.evicted_restarts;
  (* the final uneviction left the row live and the table consistent *)
  check_int "row back in memory" 10 (Table.live_rows tbl);
  assert_clean engine

let test_user_abort_interleaved_undo () =
  let engine = Engine.create ~config:(engine_config ~threshold:1_000_000 ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 5;
  let rowid2 = match Table.find_by_pk tbl [ Int 2 ] with Some r -> r | None -> assert false in
  let rowid3 = match Table.find_by_pk tbl [ Int 3 ] with Some r -> r | None -> assert false in
  (* interleave insert/update/delete, including an update of a row
     inserted in the same transaction, then abort: undo must unwind in
     exact reverse order *)
  let r =
    Engine.run engine (fun e ->
        let fresh = Engine.insert e tbl [| Int 100; Str "new"; Int 1 |] in
        Engine.update e tbl rowid2 [ (2, Int 0) ];
        Engine.delete e tbl rowid3;
        ignore (Engine.insert e tbl [| Int 3; Str "recycled"; Int 77 |]);
        Engine.update e tbl fresh [ (2, Int 2) ];
        Engine.delete e tbl fresh;
        raise (Engine.Abort "interleaved"))
  in
  check "aborted" true (r = Error (Engine.Txn_aborted "interleaved"));
  check_int "row count restored" 5 (Table.row_count tbl);
  check "inserted row rolled back" true (Table.find_by_pk tbl [ Int 100 ] = None);
  (match Table.find_by_pk tbl [ Int 2 ] with
  | Some r2 -> check_int "update rolled back" 2 (as_int (Table.read tbl r2).(2))
  | None -> Alcotest.fail "row 2 missing");
  (match Table.find_by_pk tbl [ Int 3 ] with
  | Some r3 ->
    check_int "delete rolled back to original" 3 (as_int (Table.read tbl r3).(2));
    check "original owner restored" true (as_str (Table.read tbl r3).(1) = "owner3")
  | None -> Alcotest.fail "row 3 missing");
  assert_clean engine

let test_eviction_fires_between_transactions () =
  let engine = Engine.create ~config:(engine_config ~threshold:20_000 ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  (* one big transaction: the eviction manager must not run mid-txn even
     though the threshold is crossed many times over *)
  let r =
    Engine.run engine (fun e ->
        for i = 1 to 2_000 do
          ignore (Engine.insert e tbl [| Int i; Str "owner"; Int i |])
        done;
        Table.evicted_rows tbl)
  in
  check "no eviction inside the transaction" true (r = Ok 0);
  (* subsequent small transactions cross the eviction-check interval and
     let the manager catch up *)
  for i = 2_001 to 2_200 do
    ignore
      (Engine.run engine (fun e -> ignore (Engine.insert e tbl [| Int i; Str "owner"; Int i |])))
  done;
  check "eviction fired between transactions" true (Table.evicted_rows tbl > 0);
  assert_clean engine

let test_unexpected_exception_rolls_back () =
  let engine = Engine.create ~config:(engine_config ~threshold:1_000_000 ()) ~sleep:no_sleep () in
  let tbl = Engine.create_table engine accounts_schema in
  fill engine tbl 5;
  let rowid1 = match Table.find_by_pk tbl [ Int 1 ] with Some r -> r | None -> assert false in
  (* an exception the engine does not model must still roll back — no
     partial mutations, no stale undo log *)
  (match
     Engine.run engine (fun e ->
         ignore (Engine.insert e tbl [| Int 100; Str "dirty"; Int 1 |]);
         Engine.update e tbl rowid1 [ (2, Int 0) ];
         failwith "unmodelled crash")
   with
  | _ -> Alcotest.fail "exception should propagate"
  | exception Failure msg -> check "original exception preserved" true (msg = "unmodelled crash"));
  check "partial insert rolled back" true (Table.find_by_pk tbl [ Int 100 ] = None);
  check_int "partial update rolled back" 1 (as_int (Table.read tbl rowid1).(2));
  (* the undo log is clean: the next transaction commits normally *)
  let r = Engine.run engine (fun e -> ignore (Engine.insert e tbl [| Int 200; Str "ok"; Int 1 |])) in
  check "engine still serves transactions" true (r = Ok ());
  check_int "exactly the committed rows present" 6 (Table.row_count tbl);
  assert_clean engine

let () =
  Alcotest.run "fault"
    [
      ( "blockstore",
        [
          Alcotest.test_case "serialized roundtrip" `Quick test_block_roundtrip;
          Alcotest.test_case "checksum detects corruption" `Quick test_corrupt_block_detected;
          Alcotest.test_case "transient faults retried" `Quick test_transient_faults_retried;
          Alcotest.test_case "retry budget exhausted" `Quick test_retry_budget_exhausted;
          Alcotest.test_case "exponential backoff" `Quick test_backoff_is_exponential;
          Alcotest.test_case "latency spikes paid" `Quick test_latency_spikes_paid;
        ] );
      ( "engine-faults",
        [
          Alcotest.test_case "workload survives transient faults" `Quick
            test_workload_survives_transient_faults;
          Alcotest.test_case "corrupt block degrades gracefully" `Quick
            test_corrupt_block_degrades_gracefully;
          Alcotest.test_case "missing block degrades gracefully" `Quick
            test_missing_block_degrades_gracefully;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recover after corruption" `Quick test_recover_after_corruption;
          Alcotest.test_case "recover rebuilds indexes" `Quick test_recover_rebuilds_secondary_indexes;
        ] );
      ( "abort-restart",
        [
          Alcotest.test_case "restart limit exhausted" `Quick test_restart_limit_exhausted;
          Alcotest.test_case "interleaved undo ordering" `Quick test_user_abort_interleaved_undo;
          Alcotest.test_case "eviction fires between transactions" `Quick
            test_eviction_fires_between_transactions;
          Alcotest.test_case "unexpected exception rolls back" `Quick
            test_unexpected_exception_rolls_back;
        ] );
    ]
