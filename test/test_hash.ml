(* Hash sidecar fast path (DESIGN.md §17): the typed index-handle API, the
   duplicate-key atomicity regression, and the Hash_check differential
   driving sidecar/primary agreement through merges, eviction faults,
   rollbacks and recovery replay. *)

open Hi_util
open Hi_hstore
open Hi_check
open Common
open Value

let seed =
  match Sys.getenv_opt "HI_CHECK_SEED" with Some s -> int_of_string s | None -> 0xD5E97

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", TInt); ("owner", TStr 16); ("balance", TInt) ]
    ~pk:[ "id" ]
    ~secondary:[ ("accounts_owner_idx", [ "owner"; "id" ], false) ]
    ()

let counter_value name =
  Option.value ~default:0 (Metrics.find_counter Hi_index.Hash_index.metrics_scope name)

(* --- the differential, with and without fault schedules ---------------- *)

let check_outcome name (o : Hash_check.outcome) =
  if o.Hash_check.violations <> [] then
    Alcotest.failf "%s (seed %d): %s" name seed (String.concat "\n  " o.Hash_check.violations)

let test_check_no_faults () =
  let o = Hash_check.run ~seed ~fault:Fault.no_faults () in
  check_outcome "hash/no-faults" o;
  check "work happened" true (o.Hash_check.committed > 100);
  check "duplicates exercised" true (o.Hash_check.duplicate_rejections > 0);
  check "rollbacks exercised" true (o.Hash_check.user_aborts > 0);
  check "recovery exercised" true (o.Hash_check.recoveries >= 3);
  check "points compared" true (o.Hash_check.point_checks > 1_000)

let test_check_transient_faults () =
  let fault = { Fault.no_faults with transient_fetch_p = 0.25 } in
  let o = Hash_check.run ~seed ~fault () in
  check_outcome "hash/transient" o;
  check_int "transient faults never lose data" 0 o.Hash_check.lost_errors

let test_check_lossy_faults () =
  let fault = { Fault.no_faults with transient_fetch_p = 0.05; corrupt_block_p = 0.04 } in
  (* lost blocks drop rows from BOTH paths at once; agreement must hold *)
  check_outcome "hash/lossy" (Hash_check.run ~seed ~fault ())

(* --- duplicate-key atomicity regression -------------------------------- *)

(* A rejected duplicate insert must leave the sidecar exactly as it was:
   before the fix, the hash entry was written before the primary-index
   uniqueness check, so the loser's rowid shadowed the winner's. *)
let test_duplicate_insert_atomic () =
  let engine = Engine.create () in
  let tbl = Engine.create_table engine accounts_schema in
  let r1 = Table.insert tbl [| Int 1; Str "alice"; Int 100 |] in
  (try
     ignore (Table.insert tbl [| Int 1; Str "mallory"; Int 666 |]);
     Alcotest.fail "duplicate primary key accepted"
   with Table.Duplicate_key _ -> ());
  Alcotest.(check (option int)) "fast path still serves the winner" (Some r1)
    (Table.find_by_pk tbl [ Int 1 ]);
  Alcotest.(check (option int)) "ordered path agrees" (Some r1)
    (Table.find_by_pk_ordered tbl [ Int 1 ]);
  check "winner's row intact" true ((Table.read tbl r1).(2) = Int 100);
  check_int "no stray index entries" 0 (List.length (Engine.verify_integrity engine))

(* --- typed handle API --------------------------------------------------- *)

let test_handle_resolution () =
  let engine = Engine.create () in
  let tbl = Engine.create_table engine accounts_schema in
  check "secondary resolves" true (Table.index tbl "accounts_owner_idx" <> None);
  check "primary resolves" true (Table.index tbl "accounts_pk" <> None);
  check "unknown index is None" true (Table.index tbl "no_such_idx" = None);
  (match Table.index_exn tbl "no_such_idx" with
  | exception Table.Unknown_index { table = "accounts"; index = "no_such_idx" } -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "index_exn accepted an unknown name");
  check_string "handle keeps its name" "accounts_owner_idx"
    (Table.index_name (Table.index_exn tbl "accounts_owner_idx"))

let test_handles_survive_recovery () =
  let engine = Engine.create () in
  let tbl = Engine.create_table engine accounts_schema in
  let pk = Table.pk tbl in
  let owner_idx = Table.index_exn tbl "accounts_owner_idx" in
  for id = 1 to 50 do
    ignore (Table.insert tbl [| Int id; Str (Printf.sprintf "o%d" (id mod 5)); Int id |])
  done;
  ignore (Engine.recover engine);
  (* handles resolved before recovery keep working on the rebuilt indexes *)
  Alcotest.(check (option int)) "pk handle live after recover"
    (Table.find_by_pk_ordered tbl [ Int 7 ])
    (Table.pk_find pk [ Int 7 ]);
  check_int "secondary handle live after recover" 10
    (List.length (Table.scan_prefix_eq owner_idx ~prefix:[ Str "o3" ] ~limit:100));
  check_int "clean integrity" 0 (List.length (Engine.verify_integrity engine))

let test_engine_handle_cache () =
  let engine = Engine.create () in
  let tbl = Engine.create_table engine accounts_schema in
  ignore (Table.insert tbl [| Int 1; Str "a"; Int 1 |]);
  let h1 = Engine.index_of engine ~table:"accounts" "accounts_owner_idx" in
  let h2 = Engine.index_of engine ~table:"accounts" "accounts_owner_idx" in
  check "resolution is cached" true (h1 == h2);
  check_int "cached handle scans" 1
    (List.length (Table.scan_prefix_eq h1 ~prefix:[ Str "a" ] ~limit:10))

(* --- sidecar on/off equivalence and accounting -------------------------- *)

let test_sidecar_off_equivalence () =
  let on = Engine.create () in
  let off =
    Engine.create ~config:{ Engine.default_config with hash_sidecar = false } ()
  in
  let t_on = Engine.create_table on accounts_schema in
  let t_off = Engine.create_table off accounts_schema in
  check "sidecar on by default" true (Table.hash_sidecar_enabled t_on);
  check "sidecar off by config" false (Table.hash_sidecar_enabled t_off);
  check_int "disabled sidecar costs nothing" 0 (Table.hash_sidecar_memory_bytes t_off);
  for id = 1 to 200 do
    let row () = [| Int id; Str (Printf.sprintf "o%d" (id mod 7)); Int id |] in
    ignore (Table.insert t_on (row ()));
    ignore (Table.insert t_off (row ()))
  done;
  check "enabled sidecar is accounted" true (Table.hash_sidecar_memory_bytes t_on > 0);
  let m = Engine.memory_breakdown on in
  check_int "engine accounting matches the table" (Table.hash_sidecar_memory_bytes t_on)
    m.Engine.hash_index_bytes;
  for id = 0 to 201 do
    Alcotest.(check (option bool))
      (Printf.sprintf "lookup %d agrees across configurations" id)
      (Option.map (fun _ -> true) (Table.find_by_pk t_off [ Int id ]))
      (Option.map (fun _ -> true) (Table.find_by_pk t_on [ Int id ]))
  done

let test_fast_path_counts_hits () =
  let engine = Engine.create () in
  let tbl = Engine.create_table engine accounts_schema in
  ignore (Table.insert tbl [| Int 1; Str "a"; Int 1 |]);
  let hits0 = counter_value "hits" and misses0 = counter_value "misses" in
  check "hit served" true (Table.find_by_pk tbl [ Int 1 ] <> None);
  check "miss served" true (Table.find_by_pk tbl [ Int 2 ] = None);
  check "hit counted" true (counter_value "hits" > hits0);
  check "miss counted" true (counter_value "misses" > misses0)

let () =
  Alcotest.run "hash"
    [
      ( "differential",
        [
          Alcotest.test_case "no faults" `Quick test_check_no_faults;
          Alcotest.test_case "transient faults" `Quick test_check_transient_faults;
          Alcotest.test_case "lossy faults" `Quick test_check_lossy_faults;
        ] );
      ( "regressions",
        [ Alcotest.test_case "duplicate insert is atomic" `Quick test_duplicate_insert_atomic ] );
      ( "handles",
        [
          Alcotest.test_case "resolution" `Quick test_handle_resolution;
          Alcotest.test_case "survive recovery" `Quick test_handles_survive_recovery;
          Alcotest.test_case "engine cache" `Quick test_engine_handle_cache;
        ] );
      ( "sidecar",
        [
          Alcotest.test_case "on/off equivalence" `Quick test_sidecar_off_equivalence;
          Alcotest.test_case "metrics count hits" `Quick test_fast_path_counts_hits;
        ] );
    ]
