(* Property-based differential model checking (hi_check harness).

   Every index variant in the repository — the four dynamic structures, the
   five compact/compressed static structures (driven through their merge
   path on every operation), the hybrid wrapper in primary and secondary
   configurations, the incremental-merge hybrid, and the hash index — runs
   the same seeded random operation sequences against the Oracle model.
   Divergences shrink to minimal counterexamples printed with their seed.

   Seeds: HI_CHECK_SEED overrides the fixed default (CI nightly passes a
   time-based one); HI_CHECK_ITERS multiplies the sequences per case. *)

open Hi_util
open Hi_check
open Common
module Engine = Hi_hstore.Engine

let seed =
  match Sys.getenv_opt "HI_CHECK_SEED" with Some s -> int_of_string s | None -> 0xD5E97

let iters = match Sys.getenv_opt "HI_CHECK_ITERS" with Some s -> int_of_string s | None -> 1
let seq_len = 1_200

(* --- case table ------------------------------------------------------- *)

type case = {
  target : string;
  index : Hi_index.Index_intf.index;
  profile : Gen.profile;
  cmp : Runner.cmp;
  caps : Runner.caps;
}

let plain = Runner.plain_caps
let hybrid_caps = { Runner.scans = true; invariants_anytime = false; physical_count = true }
let incr_caps = { Runner.scans = true; invariants_anytime = true; physical_count = true }
let hash_caps = { Runner.scans = false; invariants_anytime = true; physical_count = false }

let dynamic_cases =
  List.concat_map
    (fun (name, index) ->
      [
        { target = name ^ "/dup"; index; profile = Gen.Dup; cmp = Runner.Exact; caps = plain };
        { target = name ^ "/uniq"; index; profile = Gen.Unique; cmp = Runner.Exact; caps = plain };
      ])
    Hybrid_index.Instances.original_indexes

(* Static structures: every op goes through S.merge (see Adapters). *)
let static_cases =
  let mk (module S : Hi_index.Index_intf.STATIC) =
    let module Concat_mode = struct
      let mode = Hi_index.Index_intf.Concat
    end in
    let module Replace_mode = struct
      let mode = Hi_index.Index_intf.Replace
    end in
    let module Dup_ix = Adapters.Of_static (S) (Concat_mode) in
    let module Uniq_ix = Adapters.Of_static (S) (Replace_mode) in
    [
      {
        target = "static-" ^ S.name ^ "/concat";
        index = (module Dup_ix);
        profile = Gen.Dup;
        cmp = Runner.Exact;
        caps = plain;
      };
      {
        target = "static-" ^ S.name ^ "/replace";
        index = (module Uniq_ix);
        profile = Gen.Unique;
        cmp = Runner.Exact;
        caps = plain;
      };
    ]
  in
  List.concat_map mk
    [
      (module Hi_btree.Compact_btree);
      (module Hi_btree.Compressed_btree);
      (module Hi_btree.Frontcoded_btree);
      (module Hi_skiplist.Compact_skiplist);
      (module Hi_masstree.Compact_masstree);
      (module Hi_art.Compact_art);
    ]

(* Hybrid wrapper: small merge thresholds so 1,200 ops cross many merge
   epochs; primary indexes compare exactly, secondary ones per-key as
   multisets (value lists legitimately split across stages). *)
let hybrid_config ~kind ~strategy ~trigger =
  {
    Hybrid_index.Hybrid.kind;
    strategy;
    trigger;
    use_bloom = true;
    bloom_fpr = 0.01;
    min_merge_size = 16;
    defer_merge = false;
  }

let hybrid_cases =
  let structures = [ "btree"; "compressed-btree"; "frontcoded-btree"; "masstree"; "skiplist"; "art" ] in
  let open Hybrid_index.Hybrid in
  List.concat_map
    (fun s ->
      let mk tag kind strategy trigger profile cmp =
        {
          target = Printf.sprintf "hybrid-%s/%s" s tag;
          index =
            Hybrid_index.Instances.hybrid_index
              ~config:(hybrid_config ~kind ~strategy ~trigger)
              s;
          profile;
          cmp;
          caps = hybrid_caps;
        }
      in
      [
        mk "primary" Primary Merge_all (Constant 24) Gen.Unique Runner.Exact;
        mk "secondary" Secondary Merge_all (Constant 24) Gen.Dup Runner.Multiset;
      ]
      @
      (* merge-cold and ratio-trigger variants on two structures keep the
         case count reasonable while covering every merge path *)
      (if s = "btree" || s = "art" then
         [
           mk "primary-cold" Primary Merge_cold (Constant 24) Gen.Unique Runner.Exact;
           mk "secondary-ratio" Secondary Merge_all (Ratio 2) Gen.Dup Runner.Multiset;
         ]
       else []))
    structures

let incremental_cases =
  let config =
    {
      Hybrid_index.Incremental.default_config with
      trigger = Hybrid_index.Hybrid.Constant 24;
      min_merge_size = 16;
      step = 8;
    }
  in
  let module C = struct
    let config = config
  end in
  let module IB = Adapters.Of_incremental (Hybrid_index.Incremental.Incremental_btree) (C) in
  let module IS = Adapters.Of_incremental (Hybrid_index.Incremental.Incremental_skiplist) (C) in
  let module IM = Adapters.Of_incremental (Hybrid_index.Incremental.Incremental_masstree) (C) in
  let module IA = Adapters.Of_incremental (Hybrid_index.Incremental.Incremental_art) (C) in
  List.map
    (fun (s, index) ->
      {
        target = "incremental-" ^ s;
        index;
        profile = Gen.Unique;
        cmp = Runner.Exact;
        caps = incr_caps;
      })
    [
      ("btree", (module IB : Hi_index.Index_intf.INDEX));
      ("skiplist", (module IS));
      ("masstree", (module IM));
      ("art", (module IA));
    ]

let hash_cases =
  [
    {
      target = "hash";
      index = (module Adapters.Of_hash);
      profile = Gen.Unique;
      cmp = Runner.Exact;
      caps = hash_caps;
    };
  ]

let all_cases = dynamic_cases @ static_cases @ hybrid_cases @ incremental_cases @ hash_cases

(* --- differential property tests -------------------------------------- *)

let run_target case kt () =
  for iter = 0 to iters - 1 do
    let seed = seed + (7919 * iter) in
    let universe = Gen.universe kt ~seed in
    let rng = Xorshift.create seed in
    let ops =
      Gen.sequence rng ~profile:case.profile ~nkeys:(Array.length universe)
        ~scans:case.caps.Runner.scans ~flushes:true ~n:seq_len
    in
    match
      Runner.run_case case.index ~name:case.target ~seed ~cmp:case.cmp ~caps:case.caps ~universe
        ops
    with
    | None -> ()
    | Some report -> Alcotest.fail report
  done

let differential_suite kt =
  List.map
    (fun case -> Alcotest.test_case case.target `Quick (run_target case kt))
    all_cases

(* --- harness self-test: an injected divergence must be caught and shrunk
   to a tiny reproducible counterexample ---------------------------------- *)

(* A sabotaged B+tree whose [update] acknowledges the write but stores the
   wrong value: the minimal exposing sequence is insert; update; find. *)
module Broken_update : Hi_index.Index_intf.INDEX = struct
  include Hybrid_index.Instances.Btree_index

  let update t k v = update t k (v + 1)
end

let test_injected_divergence () =
  let universe = Gen.universe Key_codec.Rand_int ~seed in
  let rng = Xorshift.create seed in
  let ops =
    Gen.sequence rng ~profile:Gen.Unique ~nkeys:(Array.length universe) ~scans:true ~flushes:true
      ~n:seq_len
  in
  match
    Runner.run (module Broken_update) ~cmp:Runner.Exact ~caps:Runner.plain_caps ~universe ops
  with
  | None -> Alcotest.fail "sabotaged index escaped the harness"
  | Some f ->
    let small, sf =
      Runner.shrink (module Broken_update) ~cmp:Runner.Exact ~caps:Runner.plain_caps ~universe ops
        f
    in
    let report = Runner.report ~name:"broken-update" ~seed ~universe (small, sf) in
    if Array.length small > 10 then
      Alcotest.failf "counterexample not minimal (%d ops):\n%s" (Array.length small) report;
    (* the report must carry everything needed to reproduce *)
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    if not (contains report (string_of_int seed)) then
      Alcotest.failf "report lacks the seed:\n%s" report

(* Deterministic pinned regression: the exact op sequence distilled by the
   shrinker from the sabotage above, checked without random generation. *)
let test_injected_divergence_pinned () =
  let universe = Gen.universe Key_codec.Rand_int ~seed in
  let ops = [| Gen.Insert_unique (1, 3); Gen.Update (1, 4); Gen.Find 1 |] in
  match
    Runner.run (module Broken_update) ~cmp:Runner.Exact ~caps:Runner.plain_caps ~universe ops
  with
  | Some f -> check_int "fails at the find" 2 f.Runner.step
  | None -> Alcotest.fail "pinned 3-op counterexample no longer fails"

(* --- fault-interleaved engine mode ------------------------------------- *)

let check_outcome name (o : Engine_check.outcome) =
  if o.Engine_check.violations <> [] then
    Alcotest.failf "%s (seed %d): %s" name seed (String.concat "\n  " o.Engine_check.violations)

let test_engine_no_faults () =
  let o = Engine_check.run ~seed ~fault:Fault.no_faults () in
  check_outcome "engine/no-faults" o;
  check_int "no loss" 0 o.Engine_check.reconciled_drops;
  check_int "no lost-block errors" 0 o.Engine_check.lost_errors;
  check "work happened" true (o.Engine_check.committed > 100)

let test_engine_transient_faults () =
  let fault = { Fault.no_faults with transient_fetch_p = 0.25 } in
  let o = Engine_check.run ~seed ~fault () in
  check_outcome "engine/transient" o;
  (* transient faults must never lose data *)
  check_int "no reconciled drops" 0 o.Engine_check.reconciled_drops;
  check_int "nothing dropped in recovery" 0 o.Engine_check.recovery.Engine.dropped_rows;
  check "faults actually injected" true (o.Engine_check.transient_faults > 0)

let test_engine_lossy_faults () =
  let fault = { Fault.no_faults with transient_fetch_p = 0.05; corrupt_block_p = 0.04 } in
  let o = Engine_check.run ~seed ~fault () in
  (* losses are allowed and reconciled; wrong values and integrity
     violations are not *)
  check_outcome "engine/lossy" o

let test_engine_lossy_all_index_kinds () =
  let fault = { Fault.no_faults with corrupt_block_p = 0.06 } in
  List.iter
    (fun index_kind ->
      let o = Engine_check.run ~n:400 ~seed ~fault ~index_kind () in
      check_outcome ("engine/lossy-" ^ Engine.index_kind_name index_kind) o)
    [ Engine.Btree_config; Engine.Hybrid_config; Engine.Hybrid_compressed_config ]

let () =
  Alcotest.run "props"
    [
      ("differential-u64", differential_suite Key_codec.Rand_int);
      ("differential-email", differential_suite Key_codec.Email);
      ( "harness-self-test",
        [
          Alcotest.test_case "injected divergence shrinks" `Quick test_injected_divergence;
          Alcotest.test_case "pinned counterexample" `Quick test_injected_divergence_pinned;
        ] );
      ( "engine-faults",
        [
          Alcotest.test_case "no faults" `Quick test_engine_no_faults;
          Alcotest.test_case "transient faults" `Quick test_engine_transient_faults;
          Alcotest.test_case "lossy faults" `Quick test_engine_lossy_faults;
          Alcotest.test_case "lossy faults, all index kinds" `Quick test_engine_lossy_all_index_kinds;
        ] );
    ]
