test/test_hstore.mli:
