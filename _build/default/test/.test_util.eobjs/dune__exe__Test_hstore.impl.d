test/test_hstore.ml: Alcotest Anticache Array Engine Gen Hashtbl Hi_hstore Hi_util List Printf QCheck QCheck_alcotest Schema String Table Value
