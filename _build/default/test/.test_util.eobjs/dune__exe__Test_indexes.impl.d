test/test_indexes.ml: Alcotest Array Char Hashtbl Hi_art Hi_btree Hi_index Hi_masstree Hi_skiplist Hi_util Index_intf Index_ref Key_codec List Op_counter Printf QCheck QCheck_alcotest String
