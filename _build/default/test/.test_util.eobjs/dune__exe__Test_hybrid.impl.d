test/test_hybrid.ml: Alcotest Hashtbl Hi_util Hybrid Hybrid_index Instances Key_codec List Printf Xorshift
