test/test_indexes.mli:
