test/test_util.ml: Alcotest Array Bloom Clock_cache Compress Hashtbl Hi_util Histogram Inplace_merge Int64 Key_codec List Op_counter Printf QCheck QCheck_alcotest String Vec Xorshift Zipf
