test/test_static.ml: Alcotest Array Hashtbl Hi_art Hi_btree Hi_index Hi_masstree Hi_skiplist Hi_util Index_intf Key_codec List Op_counter Printf String Xorshift
