test/test_workloads.ml: Alcotest Articles Engine Hi_hstore Hi_util Hi_workloads Hi_ycsb Hybrid_index List Printf Runner Table Tpcc Voter
