test/test_incremental.ml: Alcotest Hashtbl Hi_util Hybrid Hybrid_index Incremental Key_codec List Printf Xorshift
