bench/main.ml: Array Bechamel_suite Common Dbms List Micro Printf String Sys Unix
