bench/dbms.ml: Anticache Articles Common Engine Hi_hstore Hi_util Hi_workloads List Printf Runner Tpcc Voter
