bench/main.mli:
