bench/bechamel_suite.ml: Analyze Array Bechamel Benchmark Common Hi_index Hi_util Hybrid_index Index_intf Instance Key_codec Lazy List Measure Printf Staged Test Time Toolkit
