bench/micro.ml: Array Common Hash_index Hi_btree Hi_index Hi_util Hi_ycsb Histogram Hybrid Hybrid_index Incremental Index_intf Instances Key_codec List Op_counter Printf Unix
