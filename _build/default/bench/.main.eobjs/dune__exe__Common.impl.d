bench/common.ml: Array Hi_art Hi_btree Hi_index Hi_masstree Hi_skiplist Hi_util Hybrid_index Index_intf Index_sig Instances Printf String Unix Xorshift Zipf
