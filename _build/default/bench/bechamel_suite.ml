(* Bechamel microbenchmarks: one [Test.make] per core operation and
   structure, reporting OLS-estimated nanoseconds per operation. *)

open Bechamel
open Toolkit
open Hi_util
open Hi_index
open Common

let prepared_keys = lazy (Key_codec.generate_keys Key_codec.Rand_int 100_000)

let point_query_test name (module D : Index_intf.DYNAMIC) =
  let keys = Lazy.force prepared_keys in
  let t = D.create () in
  Array.iteri (fun i k -> D.insert t k i) keys;
  let probes = zipf_probes keys 4096 3 in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let k = probes.(!i land 4095) in
         incr i;
         ignore (D.find t k)))

let static_query_test name (module S : Index_intf.STATIC) =
  let keys = Lazy.force prepared_keys in
  let t = S.build (entries_of_keys keys) in
  let probes = zipf_probes keys 4096 3 in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let k = probes.(!i land 4095) in
         incr i;
         ignore (S.find t k)))

let hybrid_query_test name structure =
  let keys = Lazy.force prepared_keys in
  let (module I) = hybrid_with ~structure Hybrid_index.Hybrid.default_config in
  let t = I.create () in
  Array.iteri (fun i k -> ignore (I.insert_unique t k i)) keys;
  let probes = zipf_probes keys 4096 3 in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let k = probes.(!i land 4095) in
         incr i;
         ignore (I.find t k)))

let insert_test name (module D : Index_intf.DYNAMIC) =
  let keys = Lazy.force prepared_keys in
  let t = D.create () in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let k = keys.(!i mod Array.length keys) in
         incr i;
         D.insert t k !i))

let tests () =
  List.concat_map
    (fun structure ->
      [
        point_query_test (structure ^ "/find") (dynamic_of structure);
        static_query_test ("compact-" ^ structure ^ "/find") (static_of structure);
        hybrid_query_test ("hybrid-" ^ structure ^ "/find") structure;
        insert_test (structure ^ "/insert") (dynamic_of structure);
      ])
    structures

let run () =
  section "Bechamel microbenchmarks (ns per operation, OLS estimate)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates result with Some (x :: _) -> x | _ -> nan
          in
          Printf.printf "%-28s %12.1f ns/op\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    (tests ())
