(* YCSB microbenchmark demo: run the paper's four workloads over the
   original B+tree and its hybrid counterpart and print the §6.4-style
   comparison.

   Run with:  dune exec examples/ycsb_demo.exe *)

open Hi_ycsb
open Hybrid_index

let () =
  let n = 100_000 in
  Printf.printf "YCSB on %d 64-bit random integer keys (Zipfian access)\n\n" n;
  Printf.printf "%-12s | %12s %12s | %12s %12s\n" "workload" "btree Mops" "hybrid Mops" "btree MB"
    "hybrid MB";
  print_endline (String.make 72 '-');
  List.iter
    (fun workload ->
      let spec =
        { Ycsb.default_spec with workload; num_keys = n; num_ops = n; key_type = Hi_util.Key_codec.Rand_int }
      in
      let orig = Ycsb.run (module Instances.Btree_index) spec in
      let hybrid = Ycsb.run (Instances.hybrid_index "btree") spec in
      let mb bytes = float_of_int bytes /. 1048576.0 in
      Printf.printf "%-12s | %12.2f %12.2f | %12.1f %12.1f\n" (Ycsb.workload_name workload)
        orig.Ycsb.run_mops hybrid.Ycsb.run_mops (mb orig.Ycsb.memory_bytes)
        (mb hybrid.Ycsb.memory_bytes))
    Ycsb.all_workloads;
  print_newline ();
  print_endline "The hybrid index trades a little insert throughput (two-stage uniqueness";
  print_endline "check) for a much smaller footprint; skewed updates are usually faster";
  print_endline "because recently touched entries live in the small dynamic stage."
