examples/quickstart.mli:
