examples/timeseries.ml: Bytes Hi_art Hi_util Hybrid Hybrid_index Instances Int32 Int64 List Printf String
