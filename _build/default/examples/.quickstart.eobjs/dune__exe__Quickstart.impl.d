examples/quickstart.ml: Hi_btree Hi_util Hybrid Hybrid_index Instances List Printf String
