examples/latency_sla.ml: Array Gc Hi_util Histogram Hybrid_index Incremental Instances Key_codec List Printf Unix
