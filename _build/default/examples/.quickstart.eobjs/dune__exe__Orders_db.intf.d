examples/orders_db.mli:
