examples/orders_db.ml: Array Engine Hi_hstore Hi_util List Printf Schema Table Value
