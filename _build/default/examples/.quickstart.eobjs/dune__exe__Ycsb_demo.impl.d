examples/ycsb_demo.ml: Hi_util Hi_ycsb Hybrid_index Instances List Printf String Ycsb
