examples/timeseries.mli:
