examples/latency_sla.mli:
