(* Quickstart: the hybrid index as a standalone ordered key-value map.

   Run with:  dune exec examples/quickstart.exe *)

open Hybrid_index

(* A hybrid B+tree: dynamic-stage STX-style B+tree in front of a compact,
   read-only static stage, with a Bloom filter and ratio-10 merges. *)
module H = Instances.Hybrid_btree

let () =
  let index = H.create () in

  (* Keys are order-preserving byte strings; Key_codec encodes 64-bit ints
     big-endian so integer order equals byte order. *)
  let key i = Hi_util.Key_codec.encode_int i in

  (* Insert a million entries: they accumulate in the small dynamic stage
     and migrate to the compact static stage at every ratio trigger. *)
  for i = 0 to 999_999 do
    let inserted = H.insert_unique index (key i) (i * 10) in
    assert inserted
  done;

  (* Point lookups check the Bloom filter, then at most both stages. *)
  (match H.find index (key 123_456) with
  | Some v -> Printf.printf "found key 123456 -> %d\n" v
  | None -> assert false);

  (* Primary-index updates of merged (static) entries are buffered in the
     dynamic stage and win over the stale static value. *)
  assert (H.update index (key 123_456) 42);
  assert (H.find index (key 123_456) = Some 42);

  (* Range scans merge both stages in key order. *)
  let window = H.scan_from index (key 500_000) 5 in
  Printf.printf "scan from 500000: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%d->%d" (Hi_util.Key_codec.decode_int k) v) window));

  (* Deletes tombstone static entries until the next merge collects them. *)
  assert (H.delete index (key 0));
  assert (H.find index (key 0) = None);

  (* Where did the memory go?  The static stage holds the bulk of the keys
     in the compact layout. *)
  let s = H.stats index in
  Printf.printf "entries: %d dynamic / %d static after %d merges\n"
    (H.dynamic_entry_count index) (H.static_entry_count index) s.Hybrid.merges;
  Printf.printf "memory:  %.1f MB dynamic, %.1f MB static, %.1f KB bloom\n"
    (float_of_int (H.dynamic_memory_bytes index) /. 1048576.0)
    (float_of_int (H.static_memory_bytes index) /. 1048576.0)
    (float_of_int (H.bloom_memory_bytes index) /. 1024.0);

  (* Compare with the plain B+tree holding the same data. *)
  let plain = Hi_btree.Btree.create () in
  for i = 0 to 999_999 do
    Hi_btree.Btree.insert plain (key i) (i * 10)
  done;
  Printf.printf "plain B+tree: %.1f MB; hybrid: %.1f MB (%.0f%% of the original)\n"
    (float_of_int (Hi_btree.Btree.memory_bytes plain) /. 1048576.0)
    (float_of_int (H.memory_bytes index) /. 1048576.0)
    (100.0
    *. float_of_int (H.memory_bytes index)
    /. float_of_int (Hi_btree.Btree.memory_bytes plain))
