(* An append-mostly event log indexed by a hybrid ART: monotonically
   increasing (timestamp, sequence) keys are the best case for both the
   radix tree's prefix compression and the hybrid merge (only the
   rightmost path of the compact ART is rebuilt — paper Fig 6d).

   Run with:  dune exec examples/timeseries.exe *)

open Hybrid_index

module H = Instances.Hybrid_art

let encode_event ~timestamp ~seq =
  (* 8-byte big-endian timestamp then 4-byte sequence: byte order equals
     (timestamp, seq) order *)
  let b = Bytes.create 12 in
  Bytes.set_int64_be b 0 (Int64.of_int timestamp);
  Bytes.set_int32_be b 8 (Int32.of_int seq);
  Bytes.unsafe_to_string b

let () =
  let index = H.create () in
  let base = 1_700_000_000 in

  (* ingest a day of events, a few per second *)
  let rng = Hi_util.Xorshift.create 99 in
  let n = ref 0 in
  for second = 0 to 86_399 do
    let events = 1 + Hi_util.Xorshift.int rng 8 in
    for seq = 0 to events - 1 do
      incr n;
      ignore (H.insert_unique index (encode_event ~timestamp:(base + second) ~seq) !n)
    done
  done;
  Printf.printf "ingested %d events\n" !n;

  (* range query: everything in a one-minute window *)
  let from = encode_event ~timestamp:(base + 43_200) ~seq:0 in
  let upto = base + 43_260 in
  let in_window =
    List.filter
      (fun (k, _) -> Int64.to_int (String.get_int64_be k 0) < upto)
      (H.scan_from index from 10_000)
  in
  Printf.printf "events in the minute starting at t+43200s: %d\n" (List.length in_window);

  let s = H.stats index in
  Printf.printf "merges: %d, total merge time %.1f ms (mono-inc keys merge cheaply)\n"
    s.Hybrid.merges (1000.0 *. s.Hybrid.total_merge_seconds);
  Printf.printf "memory: %.2f MB total (%.1f bytes/event)\n"
    (float_of_int (H.memory_bytes index) /. 1048576.0)
    (float_of_int (H.memory_bytes index) /. float_of_int !n);

  (* the same data in a plain dynamic ART, for contrast *)
  let plain = Hi_art.Art.create () in
  let m = ref 0 in
  let rng = Hi_util.Xorshift.create 99 in
  for second = 0 to 86_399 do
    let events = 1 + Hi_util.Xorshift.int rng 8 in
    for seq = 0 to events - 1 do
      incr m;
      Hi_art.Art.insert plain (encode_event ~timestamp:(base + second) ~seq) !m
    done
  done;
  Printf.printf "plain ART: %.2f MB — the hybrid static stage packs nodes to their exact size\n"
    (float_of_int (Hi_art.Art.memory_bytes plain) /. 1048576.0)
