(* Tail-latency-sensitive ingestion with the incremental merge (the §9
   future-work extension): compare per-operation latency percentiles of the
   blocking hybrid index against the bounded-pause variant.

   Run with:  dune exec examples/latency_sla.exe *)

open Hi_util
open Hybrid_index

let n = 400_000

let measure label insert =
  let keys = Key_codec.generate_keys Key_codec.Rand_int n in
  Gc.compact ();
  let h = Histogram.create () in
  Array.iteri
    (fun i k ->
      let t0 = Unix.gettimeofday () in
      insert k i;
      Histogram.record h (Unix.gettimeofday () -. t0))
    keys;
  let us p = 1e6 *. Histogram.percentile h p in
  Printf.printf "%-28s p50 %6.2f us   p99 %7.2f us   MAX %10.0f us\n%!" label (us 50.0) (us 99.0)
    (us 100.0)

let () =
  Printf.printf "Ingesting %d keys through a hybrid B+tree (merge ratio 10):\n\n" n;

  (* the paper's blocking merge: every query pauses while the static stage
     is rebuilt, which shows up as the MAX latency (Table 3) *)
  let module B = Instances.Hybrid_btree in
  let blocking = B.create () in
  measure "blocking merge (paper §5)" (fun k v -> ignore (B.insert_unique blocking k v));

  (* the incremental merge spreads that work: each operation advances the
     merge by at most [step] entries *)
  let module I = Incremental.Incremental_btree in
  List.iter
    (fun step ->
      let t = I.create ~config:{ Incremental.default_config with step } () in
      measure (Printf.sprintf "incremental, step %4d" step) (fun k v -> ignore (I.insert_unique t k v));
      let s = I.stats t in
      Printf.printf "%-28s (%d merges, peak %d entries of merge work in one op)\n" ""
        s.Incremental.merges_completed s.Incremental.max_entries_per_op)
    [ 1024; 8192 ];

  print_newline ();
  print_endline "The blocking variant's MAX is one full merge; the incremental variant";
  print_endline "bounds per-operation merge work, trading a small p99 premium for a much";
  print_endline "smaller worst case — the trade-off the paper's §9 calls for.  The";
  print_endline "residual spike is the freeze + final-build step (and GC); making those";
  print_endline "incremental as well is the remaining engineering gap to a fully";
  print_endline "non-blocking merge."
