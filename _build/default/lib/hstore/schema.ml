(* Table schemas and index definitions. *)

type column = { col_name : string; col_ty : Value.ty }

type index_def = {
  idx_name : string;
  idx_cols : int list; (* column positions forming the key *)
  idx_unique : bool;
}

type t = {
  table_name : string;
  columns : column array;
  primary_key : index_def;
  secondary : index_def list;
}

let column table_schema name =
  let rec go i =
    if i >= Array.length table_schema.columns then invalid_arg ("Schema.column: " ^ name)
    else if table_schema.columns.(i).col_name = name then i
    else go (i + 1)
  in
  go 0

let make ~name ~columns ~pk ?(secondary = []) () =
  let cols = Array.of_list (List.map (fun (n, ty) -> { col_name = n; col_ty = ty }) columns) in
  let resolve names =
    List.map
      (fun n ->
        let rec go i =
          if i >= Array.length cols then invalid_arg ("Schema.make: unknown column " ^ n)
          else if cols.(i).col_name = n then i
          else go (i + 1)
        in
        go 0)
      names
  in
  {
    table_name = name;
    columns = cols;
    primary_key = { idx_name = name ^ "_pk"; idx_cols = resolve pk; idx_unique = true };
    secondary =
      List.map
        (fun (iname, icols, unique) -> { idx_name = iname; idx_cols = resolve icols; idx_unique = unique })
        secondary;
  }

(* Modelled bytes of one row: fixed-width columns plus a small header, as
   in H-Store's tuple layout. *)
let row_header_bytes = 8

let tuple_bytes t =
  Array.fold_left (fun acc c -> acc + Value.ty_bytes c.col_ty) row_header_bytes t.columns

(* Build the index key of a row for the given index definition. *)
let key_of_row t idx (row : Value.t array) =
  match idx.idx_cols with
  | [ c ] -> Value.encode_key_column row.(c) t.columns.(c).col_ty
  | cols ->
    String.concat "" (List.map (fun c -> Value.encode_key_column row.(c) t.columns.(c).col_ty) cols)

(* Build an index key from raw values (for lookups), using the index's
   column types. *)
let key_of_values t idx values =
  let cols = idx.idx_cols in
  if List.length values <> List.length cols then invalid_arg "Schema.key_of_values: arity mismatch";
  String.concat ""
    (List.map2 (fun c v -> Value.encode_key_column v t.columns.(c).col_ty) cols values)

(* Prefix key for range scans over the leading columns of an index. *)
let prefix_key_of_values t idx values =
  let cols = idx.idx_cols in
  let rec take cols values =
    match (cols, values) with
    | _, [] -> []
    | c :: cs, v :: vs -> (c, v) :: take cs vs
    | [], _ :: _ -> invalid_arg "Schema.prefix_key_of_values: too many values"
  in
  String.concat ""
    (List.map (fun (c, v) -> Value.encode_key_column v t.columns.(c).col_ty) (take cols values))
