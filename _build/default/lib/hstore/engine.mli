(** Single-partition H-Store-style execution engine (paper §7.1).

    A main-memory row store executing pre-defined stored procedures
    serially, with pluggable index implementations and optional
    anti-caching.  Transactions are OCaml functions over the engine; every
    mutation logs an undo closure, so aborts (and accesses to evicted
    tuples, which abort, fetch and restart) roll the partition back
    exactly. *)

exception Abort of string
(** Raise inside a transaction to abort it; {!run} returns the reason. *)

(** Index implementation built for every table (Fig 8/9 compare these). *)
type index_kind = Btree_config | Hybrid_config | Hybrid_compressed_config

val index_kind_name : index_kind -> string

type config = {
  index_kind : index_kind;
  merge_ratio : int;  (** hybrid-index merge ratio (paper App C) *)
  eviction_threshold_bytes : int option;  (** anti-caching when set *)
  evictable_tables : string list;
  eviction_block_rows : int;
}

val default_config : config

type stats = {
  mutable committed : int;
  mutable user_aborts : int;
  mutable evicted_restarts : int;
}

type t

val create : ?config:config -> unit -> t

val create_table : t -> Schema.t -> Table.t
(** @raise Invalid_argument on duplicate table names. *)

val table : t -> string -> Table.t
(** @raise Invalid_argument on unknown names. *)

val tables_in_order : t -> Table.t list

(** {1 Transactional operations}

    Use these inside a {!run} body; each logs an undo closure. *)

val insert : t -> Table.t -> Value.t array -> int
val update : t -> Table.t -> int -> (int * Value.t) list -> unit
val delete : t -> Table.t -> int -> unit
val read : t -> Table.t -> int -> Value.t array

val run : t -> (t -> 'a) -> ('a, string) result
(** Execute a transaction: commits on normal return; rolls back and
    reports on {!Abort}; on {!Table.Evicted_access} rolls back, fetches
    the block and restarts.  After a commit the anti-caching eviction
    manager may run. *)

(** {1 Accounting} *)

type memory_breakdown = {
  tuple_bytes : int;
  pk_index_bytes : int;
  secondary_index_bytes : int;
  anticache_disk_bytes : int;
}

val total_in_memory : memory_breakdown -> int
val memory_breakdown : t -> memory_breakdown

val flush_indexes : t -> unit
(** Force all pending hybrid-index merges (measurement aid). *)

val stats : t -> stats
val anticache : t -> Anticache.t

val make_index : config -> unique:bool -> Table.packed_index
(** The index factory the engine hands to tables (exposed for tests). *)
