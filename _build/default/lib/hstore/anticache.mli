(** Anti-caching block store (paper §7.1; DeBrabant et al., VLDB '13).

    Cold tuples are packed into blocks and written to a simulated disk; a
    per-fetch latency penalty stands in for the paper's SATA drive
    (DESIGN.md §3).  Index keys of evicted tuples stay in memory — only
    the tuple bytes move. *)

type block = {
  block_table : string;
  block_rows : (int * Value.t array) array;  (** (rowid, values) pairs *)
  block_bytes : int;
}

type t

val create : ?fetch_penalty_s:float -> unit -> t
(** [fetch_penalty_s] is the simulated device latency per block fetch
    (default 0.5 ms). *)

val write_block : t -> table:string -> rows:(int * Value.t array) array -> bytes:int -> int
(** Evict a block; returns its id. *)

val fetch_block : t -> int -> block
(** Blocking fetch: pays the latency penalty, removes the block from disk.
    @raise Invalid_argument on unknown ids. *)

val disk_bytes : t -> int
val eviction_count : t -> int
val fetch_count : t -> int
