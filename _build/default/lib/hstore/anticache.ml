(* Anti-caching (paper §7.1, DeBrabant et al. VLDB '13): when the database
   exceeds a memory threshold, the engine packs the coldest tuples into
   blocks and writes them to a simulated disk, leaving in-memory tombstones
   behind.  A transaction touching an evicted tuple aborts, the engine
   fetches the block and reinstates its tuples, and the transaction
   restarts.  Index keys for evicted tuples stay in memory, exactly as in
   H-Store.

   The "disk" is a block store with a per-fetch latency penalty standing in
   for the paper's 7200 RPM SATA drive (DESIGN.md §3). *)

type block = {
  block_table : string;
  block_rows : (int * Value.t array) array; (* (rowid, values) *)
  block_bytes : int;
}

type t = {
  mutable blocks : (int, block) Hashtbl.t;
  mutable next_block : int;
  mutable disk_bytes : int;
  mutable evictions : int;
  mutable fetches : int;
  fetch_penalty_s : float; (* simulated latency per block fetch *)
}

let create ?(fetch_penalty_s = 0.0005) () =
  {
    blocks = Hashtbl.create 256;
    next_block = 0;
    disk_bytes = 0;
    evictions = 0;
    fetches = 0;
    fetch_penalty_s;
  }

let write_block t ~table ~rows ~bytes =
  let id = t.next_block in
  t.next_block <- id + 1;
  Hashtbl.replace t.blocks id { block_table = table; block_rows = rows; block_bytes = bytes };
  t.disk_bytes <- t.disk_bytes + bytes;
  t.evictions <- t.evictions + 1;
  id

(* Spin for the simulated device latency: a blocking fetch, like the
   paper's blocking eviction/uneviction path. *)
let simulate_latency seconds =
  if seconds > 0.0 then begin
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < seconds do
      ()
    done
  end

let fetch_block t id =
  match Hashtbl.find_opt t.blocks id with
  | None -> invalid_arg (Printf.sprintf "Anticache.fetch_block: unknown block %d" id)
  | Some b ->
    simulate_latency t.fetch_penalty_s;
    t.fetches <- t.fetches + 1;
    Hashtbl.remove t.blocks id;
    t.disk_bytes <- t.disk_bytes - b.block_bytes;
    b

let disk_bytes t = t.disk_bytes
let eviction_count t = t.evictions
let fetch_count t = t.fetches
