(* In-memory table: row storage plus a primary index and any number of
   secondary indexes behind the uniform {!Hybrid_index.Index_sig.INDEX}
   interface, so the whole DBMS switches between B+tree, Hybrid and
   Hybrid-Compressed indexes by configuration (paper §7).

   Rows are referenced by dense integer rowids — these are the "tuple
   pointers" stored as index values.  A row slot is live, free, or an
   anti-caching tombstone holding the id of the on-disk block. *)

open Hi_util
open Hybrid_index

exception Evicted_access of { table : string; block : int }
exception Duplicate_key of string

type row = { mutable vals : Value.t array; mutable last_access : int }

type slot = Live of row | Evicted_slot of int | Free

type packed_index = Packed : (module Index_sig.INDEX with type t = 'i) * 'i -> packed_index

type index = { def : Schema.index_def; packed : packed_index }

type t = {
  schema : Schema.t;
  slots : slot Vec.t;
  free : int Vec.t;
  pk : index;
  secondary : index list;
  clock : int ref; (* engine-wide access clock for LRU eviction *)
  mutable live_rows : int;
  mutable evicted_rows : int;
}

let create ?(clock = ref 0) ~make_index (schema : Schema.t) =
  let build (def : Schema.index_def) = { def; packed = make_index ~unique:def.idx_unique } in
  {
    schema;
    slots = Vec.create Free;
    free = Vec.create 0;
    pk = build schema.primary_key;
    secondary = List.map build schema.secondary;
    clock;
    live_rows = 0;
    evicted_rows = 0;
  }

let name t = t.schema.Schema.table_name
let row_count t = t.live_rows + t.evicted_rows

(* --- index helpers --- *)

let idx_insert_unique { packed = Packed ((module I), i); _ } key rowid = I.insert_unique i key rowid
let idx_insert { packed = Packed ((module I), i); _ } key rowid = I.insert i key rowid
let idx_find { packed = Packed ((module I), i); _ } key = I.find i key
let idx_find_all { packed = Packed ((module I), i); _ } key = I.find_all i key
let idx_delete_value { packed = Packed ((module I), i); _ } key rowid = ignore (I.delete_value i key rowid)
let idx_scan { packed = Packed ((module I), i); _ } key n = I.scan_from i key n
let idx_memory { packed = Packed ((module I), i); _ } = I.memory_bytes i
let idx_flush { packed = Packed ((module I), i); _ } = I.flush i

let index_named t iname =
  if t.pk.def.Schema.idx_name = iname then t.pk
  else
    match List.find_opt (fun ix -> ix.def.Schema.idx_name = iname) t.secondary with
    | Some ix -> ix
    | None -> invalid_arg (Printf.sprintf "Table.%s: no index %s" (name t) iname)

(* --- row access --- *)

let touch t row =
  incr t.clock;
  row.last_access <- !(t.clock)

let get_row t rowid =
  match Vec.get t.slots rowid with
  | Live row ->
    touch t row;
    row
  | Evicted_slot block -> raise (Evicted_access { table = name t; block })
  | Free -> invalid_arg (Printf.sprintf "Table.%s: dangling rowid %d" (name t) rowid)

let read t rowid = (get_row t rowid).vals

(* --- writes (each returns an undo closure for transaction rollback) --- *)

let alloc_slot t =
  if Vec.length t.free > 0 then Vec.pop t.free
  else begin
    Vec.push t.slots Free;
    Vec.length t.slots - 1
  end

let insert_row_at t rowid (vals : Value.t array) =
  Vec.set t.slots rowid (Live { vals; last_access = !(t.clock) });
  t.live_rows <- t.live_rows + 1;
  List.iter (fun ix -> idx_insert ix (Schema.key_of_row t.schema ix.def vals) rowid) t.secondary

let insert t (vals : Value.t array) =
  if Array.length vals <> Array.length t.schema.Schema.columns then
    invalid_arg (Printf.sprintf "Table.%s: wrong arity" (name t));
  Array.iteri
    (fun i v ->
      if not (Value.matches_ty v t.schema.Schema.columns.(i).col_ty) then
        invalid_arg
          (Printf.sprintf "Table.%s: column %s type mismatch" (name t)
             t.schema.Schema.columns.(i).col_name))
    vals;
  let pk_key = Schema.key_of_row t.schema t.pk.def vals in
  let rowid = alloc_slot t in
  if not (idx_insert_unique t.pk pk_key rowid) then begin
    Vec.push t.free rowid;
    raise (Duplicate_key (name t))
  end;
  insert_row_at t rowid vals;
  rowid

let remove_row_entries t rowid vals =
  let pk_key = Schema.key_of_row t.schema t.pk.def vals in
  let (Packed ((module I), i)) = t.pk.packed in
  ignore (I.delete i pk_key);
  List.iter (fun ix -> idx_delete_value ix (Schema.key_of_row t.schema ix.def vals) rowid) t.secondary

let delete t rowid =
  let row = get_row t rowid in
  remove_row_entries t rowid row.vals;
  Vec.set t.slots rowid Free;
  Vec.push t.free rowid;
  t.live_rows <- t.live_rows - 1;
  row.vals

(* Update non-key columns in place.  Key-column updates would require an
   index delete + insert; the OLTP benchmarks of §7 never do this, so it is
   rejected to keep undo simple. *)
let update t rowid (updates : (int * Value.t) list) =
  let row = get_row t rowid in
  let key_cols =
    t.pk.def.Schema.idx_cols @ List.concat_map (fun ix -> ix.def.Schema.idx_cols) t.secondary
  in
  List.iter
    (fun (c, _) ->
      if List.mem c key_cols then
        invalid_arg (Printf.sprintf "Table.%s: update of indexed column %d" (name t) c))
    updates;
  let old = Array.copy row.vals in
  List.iter (fun (c, v) -> row.vals.(c) <- v) updates;
  old

let restore t rowid (old : Value.t array) =
  match Vec.get t.slots rowid with
  | Live row -> row.vals <- old
  | Evicted_slot _ | Free -> invalid_arg (Printf.sprintf "Table.%s: restore of dead row" (name t))

(* --- lookups --- *)

let find_by_pk t key_values =
  idx_find t.pk (Schema.key_of_values t.schema t.pk.def key_values)

let find_by_index t iname key_values =
  let ix = index_named t iname in
  idx_find_all ix (Schema.key_of_values t.schema ix.def key_values)

(* Range scan over an index from a prefix of its columns: returns up to
   [limit] rowids whose keys start at or after the prefix. *)
let scan_index t iname ~prefix ~limit =
  let ix = index_named t iname in
  let key = Schema.prefix_key_of_values t.schema ix.def prefix in
  List.map snd (idx_scan ix key limit)

(* Rowids whose index key exactly matches the prefix columns. *)
let scan_index_prefix_eq t iname ~prefix ~limit =
  let ix = index_named t iname in
  let key = Schema.prefix_key_of_values t.schema ix.def prefix in
  List.filter_map
    (fun (k, rowid) -> if String.length k >= String.length key && String.sub k 0 (String.length key) = key then Some rowid else None)
    (idx_scan ix key limit)

(* --- anti-caching hooks --- *)

(* Pick the [target] coldest live rows (smallest last_access). *)
let coldest_rows t target =
  let acc = ref [] in
  for rowid = 0 to Vec.length t.slots - 1 do
    match Vec.get t.slots rowid with
    | Live row -> acc := (row.last_access, rowid) :: !acc
    | Evicted_slot _ | Free -> ()
  done;
  let sorted = List.sort compare !acc in
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else snd x :: take (n - 1) rest in
  take target sorted

let evict_rows t (ac : Anticache.t) rowids =
  let rows =
    List.filter_map
      (fun rowid ->
        match Vec.get t.slots rowid with Live row -> Some (rowid, row.vals) | _ -> None)
      rowids
  in
  if rows = [] then None
  else begin
    let bytes = List.length rows * Schema.tuple_bytes t.schema in
    let block = Anticache.write_block ac ~table:(name t) ~rows:(Array.of_list rows) ~bytes in
    List.iter
      (fun (rowid, _) ->
        Vec.set t.slots rowid (Evicted_slot block);
        t.live_rows <- t.live_rows - 1;
        t.evicted_rows <- t.evicted_rows + 1)
      rows;
    Some block
  end

let unevict_block t (ac : Anticache.t) block =
  let b = Anticache.fetch_block ac block in
  Array.iter
    (fun (rowid, vals) ->
      match Vec.get t.slots rowid with
      | Evicted_slot _ ->
        Vec.set t.slots rowid (Live { vals; last_access = !(t.clock) });
        t.live_rows <- t.live_rows + 1;
        t.evicted_rows <- t.evicted_rows - 1
      | Live _ | Free -> ())
    b.Anticache.block_rows

(* --- accounting --- *)

let tombstone_bytes = 16 (* in-memory marker for an evicted tuple *)

let tuple_memory_bytes t =
  (t.live_rows * Schema.tuple_bytes t.schema) + (t.evicted_rows * tombstone_bytes)

let pk_index_memory_bytes t = idx_memory t.pk
let secondary_index_memory_bytes t = List.fold_left (fun acc ix -> acc + idx_memory ix) 0 t.secondary
let flush_indexes t =
  idx_flush t.pk;
  List.iter idx_flush t.secondary
let live_rows t = t.live_rows
let evicted_rows t = t.evicted_rows

let schema t = t.schema
