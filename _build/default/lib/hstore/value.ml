(* Column values and order-preserving key encoding for the H-Store-style
   engine.  Index keys are byte strings: composite keys concatenate the
   order-preserving encodings of their columns (ints are sign-flipped
   big-endian; strings are padded to their declared width so concatenation
   stays order-preserving). *)

type t = Int of int | Float of float | Str of string | Null

type ty = TInt | TFloat | TStr of int (* declared width in bytes *)

let ty_name = function TInt -> "int" | TFloat -> "float" | TStr w -> Printf.sprintf "varchar(%d)" w

(* Modelled storage bytes of a column in a row (fixed-width rows, as in
   H-Store's tuple layout). *)
let ty_bytes = function TInt -> 8 | TFloat -> 8 | TStr w -> w

let matches_ty v ty =
  match (v, ty) with
  | Int _, TInt | Float _, TFloat | Null, _ -> true
  | Str s, TStr w -> String.length s <= w
  | _ -> false

let to_string = function
  | Int x -> string_of_int x
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Null -> "NULL"

let as_int = function Int x -> x | v -> invalid_arg ("Value.as_int: " ^ to_string v)
let as_float = function Float f -> f | Int x -> float_of_int x | v -> invalid_arg ("Value.as_float: " ^ to_string v)
let as_str = function Str s -> s | v -> invalid_arg ("Value.as_str: " ^ to_string v)

(* Order-preserving encoding of a signed int: flip the sign bit and write
   big-endian, so signed order equals byte order. *)
let encode_int_key x =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.logxor (Int64.of_int x) Int64.min_int);
  Bytes.unsafe_to_string b

let encode_key_column v ty =
  match (v, ty) with
  | Int x, TInt -> encode_int_key x
  | Str s, TStr w ->
    (* pad to declared width: keeps composite concatenation order-preserving *)
    if String.length s >= w then String.sub s 0 w else s ^ String.make (w - String.length s) '\000'
  | Float f, TFloat ->
    (* IEEE order-preserving transform *)
    let bits = Int64.bits_of_float f in
    let bits = if Int64.compare bits 0L < 0 then Int64.lognot bits else Int64.logxor bits Int64.min_int in
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 bits;
    Bytes.unsafe_to_string b
  | Null, _ -> String.make (ty_bytes ty) '\000'
  | _ -> invalid_arg "Value.encode_key_column: type mismatch"
