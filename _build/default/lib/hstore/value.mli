(** Column values and order-preserving key encodings for the engine.

    Index keys are byte strings: composite keys concatenate the
    order-preserving encodings of their columns, so [String.compare] on
    keys equals the tuple ordering of the column values. *)

type t = Int of int | Float of float | Str of string | Null

type ty = TInt | TFloat | TStr of int  (** [TStr w]: declared width in bytes *)

val ty_name : ty -> string

val ty_bytes : ty -> int
(** Modelled storage bytes of the column in a fixed-width row. *)

val matches_ty : t -> ty -> bool
(** Type check; [Null] matches any column type, strings must fit the
    declared width. *)

val to_string : t -> string

val as_int : t -> int
(** @raise Invalid_argument on non-ints. *)

val as_float : t -> float
(** Ints widen; otherwise
    @raise Invalid_argument. *)

val as_str : t -> string
(** @raise Invalid_argument on non-strings. *)

val encode_int_key : int -> string
(** Sign-flipped big-endian: signed order = byte order. *)

val encode_key_column : t -> ty -> string
(** Order-preserving encoding of one key column: ints sign-flipped
    big-endian, strings padded to the declared width, floats via the IEEE
    order-preserving transform, NULLs as zero bytes.
    @raise Invalid_argument on a type mismatch. *)
