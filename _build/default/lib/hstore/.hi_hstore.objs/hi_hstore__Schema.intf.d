lib/hstore/schema.mli: Value
