lib/hstore/schema.ml: Array List String Value
