lib/hstore/engine.ml: Anticache Array Hashtbl Hi_util Hybrid Hybrid_index Instances List Schema Table
