lib/hstore/table.ml: Anticache Array Hi_util Hybrid_index Index_sig List Printf Schema String Value Vec
