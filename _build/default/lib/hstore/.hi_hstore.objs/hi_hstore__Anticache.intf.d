lib/hstore/anticache.mli: Value
