lib/hstore/value.mli:
