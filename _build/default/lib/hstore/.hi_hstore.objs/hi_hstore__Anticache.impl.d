lib/hstore/anticache.ml: Hashtbl Printf Unix Value
