lib/hstore/engine.mli: Anticache Schema Table Value
