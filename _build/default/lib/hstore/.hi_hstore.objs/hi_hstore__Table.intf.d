lib/hstore/table.mli: Anticache Hybrid_index Schema Value
