lib/hstore/value.ml: Bytes Int64 Printf String
