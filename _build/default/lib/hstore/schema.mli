(** Table schemas and index definitions for the engine. *)

type column = { col_name : string; col_ty : Value.ty }

type index_def = {
  idx_name : string;
  idx_cols : int list;  (** column positions forming the key *)
  idx_unique : bool;
}

type t = {
  table_name : string;
  columns : column array;
  primary_key : index_def;
  secondary : index_def list;
}

val make :
  name:string ->
  columns:(string * Value.ty) list ->
  pk:string list ->
  ?secondary:(string * string list * bool) list ->
  unit ->
  t
(** [make ~name ~columns ~pk ()] builds a schema.  The primary key is
    named [name ^ "_pk"]; secondary indexes are (name, columns, unique)
    triples.
    @raise Invalid_argument on unknown column names. *)

val column : t -> string -> int
(** Position of a column by name.
    @raise Invalid_argument when absent. *)

val tuple_bytes : t -> int
(** Modelled bytes of one row: fixed-width columns plus a small header,
    as in H-Store's tuple layout. *)

val row_header_bytes : int

val key_of_row : t -> index_def -> Value.t array -> string
(** The index key of a full row. *)

val key_of_values : t -> index_def -> Value.t list -> string
(** An index key from exactly the key columns' values (lookups).
    @raise Invalid_argument on arity mismatch. *)

val prefix_key_of_values : t -> index_def -> Value.t list -> string
(** A range-scan prefix from the leading key columns.
    @raise Invalid_argument when more values than key columns. *)
