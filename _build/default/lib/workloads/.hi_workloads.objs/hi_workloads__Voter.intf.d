lib/workloads/voter.mli: Hi_hstore
