lib/workloads/articles.ml: Array Char Engine Hi_hstore Hi_util Key_codec List Printf Schema String Table Value Xorshift
