lib/workloads/articles.mli: Hi_hstore Hi_util
