lib/workloads/runner.mli: Hi_hstore Hi_util
