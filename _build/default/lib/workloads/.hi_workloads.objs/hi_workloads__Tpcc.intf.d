lib/workloads/tpcc.mli: Hi_hstore
