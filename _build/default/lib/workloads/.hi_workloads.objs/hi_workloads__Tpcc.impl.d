lib/workloads/tpcc.ml: Array Char Engine Hashtbl Hi_hstore Hi_util List Schema String Table Value Xorshift
