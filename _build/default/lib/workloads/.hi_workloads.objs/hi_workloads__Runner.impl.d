lib/workloads/runner.ml: Engine Hi_hstore Hi_util Histogram List Unix
