(* Shared benchmark runner for the full-DBMS experiments (paper §7):
   executes a transaction stream against an engine, recording throughput,
   per-transaction latency percentiles (Table 3), and periodic
   throughput/memory samples for the anti-caching timelines (Fig 9). *)

open Hi_util
open Hi_hstore

type sample = {
  at_txn : int;
  window_tps : float;
  memory : Engine.memory_breakdown;
}

type result = {
  txns : int;
  seconds : float;
  tps : float;
  latency : Histogram.t;
  memory : Engine.memory_breakdown; (* at the end of the run *)
  samples : sample list; (* oldest first *)
  committed : int;
  user_aborts : int;
  evicted_restarts : int;
}

(* Run [num_txns] transactions; [transaction] returns a result we ignore
   beyond abort accounting (the engine tracks commits/aborts itself). *)
let run (engine : Engine.t) ~transaction ~num_txns ?(warmup = 0) ?(sample_every = 0) () =
  for _ = 1 to warmup do
    ignore (transaction engine)
  done;
  let latency = Histogram.create () in
  let samples = ref [] in
  let window_start = ref (Unix.gettimeofday ()) in
  let t0 = Unix.gettimeofday () in
  for i = 1 to num_txns do
    let s = Unix.gettimeofday () in
    ignore (transaction engine);
    Histogram.record latency (Unix.gettimeofday () -. s);
    if sample_every > 0 && i mod sample_every = 0 then begin
      let now = Unix.gettimeofday () in
      let window_tps = float_of_int sample_every /. (now -. !window_start) in
      window_start := now;
      samples := { at_txn = i; window_tps; memory = Engine.memory_breakdown engine } :: !samples
    end
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  let stats = Engine.stats engine in
  {
    txns = num_txns;
    seconds;
    tps = float_of_int num_txns /. seconds;
    latency;
    memory = Engine.memory_breakdown engine;
    samples = List.rev !samples;
    committed = stats.Engine.committed;
    user_aborts = stats.Engine.user_aborts;
    evicted_restarts = stats.Engine.evicted_restarts;
  }
