(* Articles (paper §7.2): an on-line news site where users submit articles
   and post comments — read-intensive, with look-ups through both primary
   and secondary indexes, scaled to resemble a week of Reddit traffic. *)

open Hi_util
open Hi_hstore
open Value

type scale = { users : int; initial_articles : int; comments_per_article : int }

let default_scale = { users = 10_000; initial_articles = 5_000; comments_per_article = 4 }

let users_schema =
  Schema.make ~name:"users"
    ~columns:[ ("u_id", TInt); ("u_name", TStr 20); ("u_email", TStr 40); ("u_karma", TInt) ]
    ~pk:[ "u_id" ] ()

let articles_schema =
  Schema.make ~name:"articles"
    ~columns:
      [
        ("a_id", TInt); ("a_u_id", TInt); ("a_title", TStr 60); ("a_text", TStr 200);
        ("a_num_comments", TInt); ("a_rating", TInt);
      ]
    ~pk:[ "a_id" ]
    ~secondary:[ ("articles_user_idx", [ "a_u_id"; "a_id" ], false) ]
    ()

let comments_schema =
  Schema.make ~name:"comments"
    ~columns:[ ("c_id", TInt); ("c_a_id", TInt); ("c_u_id", TInt); ("c_text", TStr 120) ]
    ~pk:[ "c_id" ]
    ~secondary:[ ("comments_article_idx", [ "c_a_id"; "c_id" ], false) ]
    ()

type state = {
  scale : scale;
  rng : Xorshift.t;
  mutable next_article : int;
  mutable next_comment : int;
}

let name = "articles"

let col schema n = Schema.column schema n

let rand_text rng n = String.init (n / 2 + Xorshift.int rng (n / 2)) (fun _ -> Char.chr (97 + Xorshift.int rng 26))

let setup ?(scale = default_scale) (engine : Engine.t) =
  List.iter (fun s -> ignore (Engine.create_table engine s)) [ users_schema; articles_schema; comments_schema ];
  let rng = Xorshift.create 23 in
  let users = Engine.table engine "users" in
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  for u = 1 to scale.users do
    ignore
      (Table.insert users
         [| Int u; Str (Printf.sprintf "user%d" u); Str (Key_codec.email_of_id u); Int 0 |])
  done;
  let st = { scale; rng; next_article = 0; next_comment = 0 } in
  for _ = 1 to scale.initial_articles do
    st.next_article <- st.next_article + 1;
    let a = st.next_article in
    ignore
      (Table.insert articles
         [| Int a; Int (1 + Xorshift.int rng scale.users); Str (rand_text rng 60);
            Str (rand_text rng 200); Int scale.comments_per_article; Int 0 |]);
    for _ = 1 to scale.comments_per_article do
      st.next_comment <- st.next_comment + 1;
      ignore
        (Table.insert comments
           [| Int st.next_comment; Int a; Int (1 + Xorshift.int rng scale.users); Str (rand_text rng 120) |])
    done
  done;
  st

(* --- stored procedures --- *)

let get_article st engine =
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  let a = 1 + Xorshift.int st.rng st.next_article in
  match Table.find_by_pk articles [ Int a ] with
  | None -> raise (Engine.Abort "missing article")
  | Some a_rowid ->
    ignore (Engine.read engine articles a_rowid);
    List.iter
      (fun c_rowid -> ignore (Engine.read engine comments c_rowid))
      (Table.scan_index_prefix_eq comments "comments_article_idx" ~prefix:[ Int a ] ~limit:50)

let get_articles_by_user st engine =
  let articles = Engine.table engine "articles" in
  let u = 1 + Xorshift.int st.rng st.scale.users in
  List.iter
    (fun a_rowid -> ignore (Engine.read engine articles a_rowid))
    (Table.scan_index_prefix_eq articles "articles_user_idx" ~prefix:[ Int u ] ~limit:20)

let post_article st engine =
  let articles = Engine.table engine "articles" in
  st.next_article <- st.next_article + 1;
  ignore
    (Engine.insert engine articles
       [| Int st.next_article; Int (1 + Xorshift.int st.rng st.scale.users);
          Str (rand_text st.rng 60); Str (rand_text st.rng 200); Int 0; Int 0 |])

let post_comment st engine =
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  let a = 1 + Xorshift.int st.rng st.next_article in
  match Table.find_by_pk articles [ Int a ] with
  | None -> raise (Engine.Abort "missing article")
  | Some a_rowid ->
    st.next_comment <- st.next_comment + 1;
    ignore
      (Engine.insert engine comments
         [| Int st.next_comment; Int a; Int (1 + Xorshift.int st.rng st.scale.users);
            Str (rand_text st.rng 120) |]);
    let a_row = Engine.read engine articles a_rowid in
    Engine.update engine articles a_rowid
      [ (col articles_schema "a_num_comments", Int (as_int a_row.(col articles_schema "a_num_comments") + 1)) ]

let update_rating st engine =
  let articles = Engine.table engine "articles" in
  let a = 1 + Xorshift.int st.rng st.next_article in
  match Table.find_by_pk articles [ Int a ] with
  | None -> raise (Engine.Abort "missing article")
  | Some a_rowid ->
    let a_row = Engine.read engine articles a_rowid in
    Engine.update engine articles a_rowid
      [ (col articles_schema "a_rating", Int (as_int a_row.(col articles_schema "a_rating") + 1)) ]

(* Read-intensive mix: 50 % article reads, 10 % user-page reads,
   28 % comments, 2 % submissions, 10 % rating updates. *)
let transaction st engine =
  let r = Xorshift.int st.rng 100 in
  if r < 50 then Engine.run engine (get_article st)
  else if r < 60 then Engine.run engine (get_articles_by_user st)
  else if r < 88 then Engine.run engine (post_comment st)
  else if r < 90 then Engine.run engine (post_article st)
  else Engine.run engine (update_rating st)

(* Invariant: a_num_comments equals the comment rows per article for
   articles that existed at load (tests use small runs). *)
let check_comment_counts engine upto =
  let articles = Engine.table engine "articles" in
  let comments = Engine.table engine "comments" in
  let ok = ref true in
  for a = 1 to upto do
    match Table.find_by_pk articles [ Int a ] with
    | None -> ok := false
    | Some a_rowid ->
      let declared = as_int (Table.read articles a_rowid).(col articles_schema "a_num_comments") in
      let actual =
        List.length (Table.scan_index_prefix_eq comments "comments_article_idx" ~prefix:[ Int a ] ~limit:10_000)
      in
      if declared <> actual then ok := false
  done;
  !ok
