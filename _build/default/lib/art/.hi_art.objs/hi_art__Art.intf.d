lib/art/art.mli:
