lib/art/compact_art.mli: Hi_index Seq
