lib/art/art.ml: Array Char Hi_util List Mem_model Op_counter String
