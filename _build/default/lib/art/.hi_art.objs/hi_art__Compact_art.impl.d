lib/art/compact_art.ml: Array Bytes Char Hi_index Hi_util Index_intf Inplace_merge List Mem_model Op_counter Seq String
