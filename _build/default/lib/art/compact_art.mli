(** Compact ART — the Compaction rule applied to ART (paper §4.2).

    The radix-tree shape is kept (Structural Reduction leaves ART
    unchanged, §4.3) but every node is allocated at its exact size:
    Layout 1 with array length n for n <= 227 children, Layout 3 (direct
    256-way array) otherwise.

    [merge] is the recursive trie merge of Appendix B: subtrees the batch
    does not touch are reused, which is why merging monotonically
    increasing keys only rebuilds the rightmost path (Fig 6d).

    Implements {!Hi_index.Index_intf.STATIC}. *)

type t

val name : string
val empty : t
val build : Hi_index.Index_intf.entries -> t
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val key_count : t -> int
val entry_count : t -> int

val merge :
  t ->
  Hi_index.Index_intf.entries ->
  mode:Hi_index.Index_intf.merge_mode ->
  deleted:(string -> bool) ->
  t

val memory_bytes : t -> int

val layout1_max : int
(** 227 — the crossover where Layout 3 becomes denser than Layout 1
    (paper §4.2). *)

val to_seq : t -> (string * int array) Seq.t
(** Lazy entry cursor in key order — pulls one entry at a time so the
    incremental merge (paper §9 future work) can bound its per-step
    work. *)
