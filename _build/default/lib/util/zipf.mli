(** Zipfian request-distribution generator (Gray et al., SIGMOD '94), the
    skewed item-popularity distribution used by YCSB and typical of OLTP
    workloads (paper §1, §6.1). *)

type t

val default_theta : float
(** YCSB's default skew parameter, 0.99. *)

val create : ?theta:float -> ?scrambled:bool -> items:int -> Xorshift.t -> t
(** [create ~items rng] builds a generator over [\[0, items)].
    [theta] controls skew (default {!default_theta}).  When [scrambled] is
    true (default) popular items are spread across the key space with an
    FNV-1a hash, matching YCSB's ScrambledZipfian generator.
    @raise Invalid_argument if [items <= 0]. *)

val next_rank : t -> int
(** Next Zipfian {e rank}: 0 is always the most popular item. *)

val next : t -> int
(** Next item id (rank scrambled over the key space when enabled). *)

val items : t -> int
(** Size of the item universe. *)

val zeta : int -> float -> float
(** [zeta n theta] is the generalized harmonic number used internally
    (exposed for tests). *)
