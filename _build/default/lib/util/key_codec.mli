(** Order-preserving key encodings.

    All indexes are keyed by byte strings compared with [String.compare];
    64-bit integers are encoded big-endian so integer order equals byte
    order.  This lets one index implementation serve the paper's three key
    types: 64-bit random integers, 64-bit monotonically increasing integers
    and email addresses (paper §6.1). *)

val encode_u64 : int64 -> string
(** 8-byte big-endian encoding; unsigned 64-bit order = byte order. *)

val decode_u64 : string -> int64
(** Inverse of {!encode_u64}.
    @raise Invalid_argument on strings shorter than 8 bytes. *)

val encode_int : int -> string
(** [encode_int x] encodes a non-negative OCaml int.
    @raise Invalid_argument on negatives. *)

val decode_int : string -> int
(** Inverse of {!encode_int}. *)

val email_of_id : int -> string
(** Deterministic synthetic email address (~30 bytes on average, shared
    local-part stems and domain pool) standing in for the paper's private
    email corpus. Distinct ids yield distinct addresses. *)

type key_type = Rand_int | Mono_inc_int | Email
(** The three key types of the paper's microbenchmarks. *)

val key_type_name : key_type -> string
val all_key_types : key_type list

val generate_keys : ?seed:int -> key_type -> int -> string array
(** [generate_keys kt n] returns [n] distinct keys of type [kt]
    (deterministic for a given [seed]). *)
