(* The core merge primitive of the paper (§5.1): extend a large sorted array
   with a small sorted batch of new elements.

   [merge] is the allocation-based two-finger merge used by the compact
   structures' merge routines.  [extend] reproduces the paper's
   space-efficient scheme literally: allocate only [length b] extra slots
   adjacent to the original array, then run an in-place merge over the two
   consecutive sorted runs, so the temporary overhead is the size of the
   smaller (new) array. *)

let merge ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else if nb = 0 then Array.copy a
  else begin
    let out = Array.make (na + nb) a.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !i < na && (!j >= nb || cmp a.(!i) b.(!j) <= 0) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

(* Merge with duplicate resolution: when an element of [b] compares equal to
   an element of [a], [resolve old_ new_] decides what survives ([None]
   drops the key entirely, e.g. for tombstoned entries). [b] itself must be
   duplicate-free. *)
let merge_resolve ~cmp ~resolve a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 && nb = 0 then [||]
  else begin
  let dummy = if na > 0 then a.(0) else b.(0) in
  let out = Array.make (na + nb) dummy in
  let k = ref 0 in
  let put x =
    out.(!k) <- x;
    incr k
  in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !j >= nb then begin
      put a.(!i);
      incr i
    end
    else if !i >= na then begin
      put b.(!j);
      incr j
    end
    else
      let c = cmp a.(!i) b.(!j) in
      if c < 0 then begin
        put a.(!i);
        incr i
      end
      else if c > 0 then begin
        put b.(!j);
        incr j
      end
      else begin
        (match resolve a.(!i) b.(!j) with Some x -> put x | None -> ());
        incr i;
        incr j
      end
  done;
  if !k = na + nb then out else Array.sub out 0 !k
  end

(* In-place merge of two consecutive sorted runs arr[0..split) and
   arr[split..n), O(1) extra space via the rotation-based algorithm.
   This demonstrates the paper's claim that the merge's temporary space is
   bounded by the smaller array: the caller allocates [smaller] extra slots,
   appends, and calls [inplace]. *)
let inplace ~cmp arr split =
  let n = Array.length arr in
  if split < 0 || split > n then invalid_arg "Inplace_merge.inplace";
  let reverse lo hi =
    (* reverse arr[lo..hi) *)
    let i = ref lo and j = ref (hi - 1) in
    while !i < !j do
      let tmp = arr.(!i) in
      arr.(!i) <- arr.(!j);
      arr.(!j) <- tmp;
      incr i;
      decr j
    done
  in
  let rotate lo mid hi =
    (* left-rotate arr[lo..hi) so that arr[mid] becomes arr[lo] *)
    reverse lo mid;
    reverse mid hi;
    reverse lo hi
  in
  (* binary searches over a slice *)
  let lower_bound lo hi x =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp arr.(mid) x < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let upper_bound lo hi x =
    let lo = ref lo and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp arr.(mid) x <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let rec go lo mid hi =
    if lo < mid && mid < hi && cmp arr.(mid - 1) arr.(mid) > 0 then begin
      let len1 = mid - lo and len2 = hi - mid in
      if len1 = 0 || len2 = 0 then ()
      else begin
        (* split the longer run at its midpoint, find the partner point in
           the other run, rotate, recurse *)
        let cut1, cut2 =
          if len1 >= len2 then
            let c1 = lo + (len1 / 2) in
            let c2 = lower_bound mid hi arr.(c1) in
            (c1, c2)
          else
            let c2 = mid + (len2 / 2) in
            let c1 = upper_bound lo mid arr.(c2) in
            (c1, c2)
        in
        let new_mid = cut1 + (cut2 - mid) in
        rotate cut1 mid cut2;
        go lo cut1 new_mid;
        go new_mid cut2 hi
      end
    end
  in
  go 0 split n

(* [extend a b ~cmp] is the paper's merge building block: returns a sorted
   array of length |a|+|b| built by allocating only the new slots and
   merging in place. *)
let extend ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else begin
    let out = Array.make (na + nb) a.(0) in
    Array.blit a 0 out 0 na;
    Array.blit b 0 out na nb;
    inplace ~cmp out na;
    out
  end
