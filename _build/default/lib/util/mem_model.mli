(** C-layout memory model.

    The paper measures malloc-level footprints of C++ structures; an OCaml
    heap walk would report the OCaml runtime's boxing instead.  Every index
    computes the bytes its layout would occupy in the paper's C
    implementation using these shared constants (DESIGN.md §3). *)

val pointer_size : int
(** 8 bytes. *)

val value_size : int
(** Tuple pointers are 64-bit (paper §6.1). *)

val cache_line : int
(** 64 bytes; used by the profiling proxy. *)

val btree_node_size : int
(** 512 bytes — the node size the paper found best for the in-memory STX
    B+tree (§4.1). *)

val key_slot_bytes : int -> int
(** Bytes for a node-resident key slot: an 8-byte slice inline, otherwise a
    pointer plus out-of-line key bytes. *)

val packed_key_bytes : int -> int
(** Bytes for a key packed into a concatenated byte array with a 4-byte
    offset entry (compact structures). *)

val mib : int -> float
val gib : int -> float

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count. *)
