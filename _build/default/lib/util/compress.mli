(** LZ77-family byte compressor standing in for Snappy/LZ4 in the
    Compression D-to-S rule (paper §4.4): fast decompression in exchange
    for a modest compression rate.  Used to compress the leaf pages of the
    Compressed B+tree. *)

val compress : string -> string
(** Compress a byte string.  Always succeeds; incompressible input grows by
    a few header bytes only. *)

val decompress : string -> string
(** Inverse of {!compress}.
    @raise Invalid_argument on corrupt input. *)

val uncompressed_length : string -> int
(** Uncompressed size recorded in the stream header, without
    decompressing. *)
