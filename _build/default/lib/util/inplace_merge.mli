(** Sorted-array merge primitives — the core building block of the hybrid
    index merge process (paper §5.1): "allocate a new array adjacent to the
    original sorted array with just enough space for the new elements, then
    perform in-place merge sort on the two consecutive sorted arrays". *)

val merge : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** Plain two-finger merge of two sorted arrays (stable: ties keep elements
    of the first array first). *)

val merge_resolve :
  cmp:('a -> 'a -> int) ->
  resolve:('a -> 'a -> 'a option) ->
  'a array ->
  'a array ->
  'a array
(** Merge with duplicate resolution: when elements compare equal,
    [resolve old_ new_] decides what survives; [None] drops the key (used
    for tombstoned entries at merge time).  The second array must be
    duplicate-free. *)

val inplace : cmp:('a -> 'a -> int) -> 'a array -> int -> unit
(** [inplace ~cmp arr split] merges the two consecutive sorted runs
    [arr.(0..split)) and [arr.(split..n))] in place with O(1) extra space
    (rotation-based).
    @raise Invalid_argument if [split] is out of range. *)

val extend : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** [extend a b] implements the paper's space-bounded merge: allocate
    |a|+|b| slots, blit both runs, merge in place.  Temporary overhead
    beyond the result itself is zero. *)
