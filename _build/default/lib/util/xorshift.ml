(* Deterministic 64-bit PRNG (splitmix64 seeding + xoshiro256** core).
   All randomness in the repository flows through this module so that
   workloads and tests are reproducible from a single integer seed. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_u64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Non-negative 62-bit int, uniform. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2)

(* Uniform integer in [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound must be positive";
  next_int t mod bound

let float01 t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_u64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_u64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
