lib/util/inplace_merge.mli:
