lib/util/bloom.ml: Bytes Char Float Int64 String
