lib/util/key_codec.mli:
