lib/util/vec.mli:
