lib/util/clock_cache.mli:
