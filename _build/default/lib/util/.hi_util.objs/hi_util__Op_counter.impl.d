lib/util/op_counter.ml:
