lib/util/mem_model.ml: Fmt
