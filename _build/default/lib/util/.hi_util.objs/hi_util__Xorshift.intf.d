lib/util/xorshift.mli:
