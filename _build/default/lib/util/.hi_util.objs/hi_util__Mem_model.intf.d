lib/util/mem_model.mli: Format
