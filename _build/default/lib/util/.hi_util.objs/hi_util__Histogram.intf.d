lib/util/histogram.mli:
