lib/util/compress.mli:
