lib/util/zipf.mli: Xorshift
