lib/util/clock_cache.ml: Array Hashtbl
