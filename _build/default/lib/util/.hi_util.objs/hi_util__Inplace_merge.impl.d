lib/util/inplace_merge.ml: Array
