lib/util/op_counter.mli:
