lib/util/key_codec.ml: Array Bloom Bytes Char Hashtbl Int64 Printf String Xorshift
