lib/util/bloom.mli:
