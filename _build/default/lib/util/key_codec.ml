(* Order-preserving key encodings.

   Every index in the repository is keyed by byte strings compared with
   [String.compare] (byte-wise, unsigned).  Encoding 64-bit integers
   big-endian makes integer order coincide with byte order, so one index
   implementation serves the paper's three key types (64-bit random int,
   64-bit monotonically increasing int, email). *)

let encode_u64 (x : int64) =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 x;
  Bytes.unsafe_to_string b

let decode_u64 s =
  if String.length s < 8 then invalid_arg "Key_codec.decode_u64: short string";
  String.get_int64_be s 0

let encode_int x =
  if x < 0 then invalid_arg "Key_codec.encode_int: negative";
  encode_u64 (Int64.of_int x)

let decode_int s = Int64.to_int (decode_u64 s)

(* Synthetic email keys: ~30-byte average with shared prefixes within a
   domain, standing in for the paper's private email corpus.  Shared
   local-part stems and a small domain pool preserve the common-prefix
   structure that trie-based indexes (Masstree, ART) exploit. *)

let domains =
  [| "gmail.com"; "yahoo.com"; "hotmail.com"; "aol.com"; "cs.cmu.edu";
     "andrew.cmu.edu"; "outlook.com"; "mail.ru"; "web.de"; "example.org" |]

let stems =
  [| "john"; "jane"; "alex"; "maria"; "wei"; "chen"; "huan"; "david";
     "andy"; "mike"; "lin"; "rui"; "sam"; "kate"; "robert"; "susan" |]

let email_of_id id =
  (* Deterministic: the same id always produces the same address, so keys
     can be regenerated without storing them. *)
  let h = Bloom.fnv1a_64 (string_of_int id) in
  let h = Int64.to_int (Int64.shift_right_logical h 2) in
  let stem = stems.(h mod Array.length stems) in
  let domain = domains.((h / 16) mod Array.length domains) in
  Printf.sprintf "%s.%s%08d@%s" stem (String.make 1 (Char.chr (97 + (h / 256 mod 26)))) id domain

type key_type = Rand_int | Mono_inc_int | Email

let key_type_name = function
  | Rand_int -> "rand"
  | Mono_inc_int -> "mono-inc"
  | Email -> "email"

let all_key_types = [ Rand_int; Mono_inc_int; Email ]

(* Generate [n] distinct keys of the given type. *)
let generate_keys ?(seed = 42) key_type n =
  let rng = Xorshift.create seed in
  match key_type with
  | Mono_inc_int -> Array.init n (fun i -> encode_u64 (Int64.of_int i))
  | Rand_int ->
    let seen = Hashtbl.create (2 * n) in
    Array.init n (fun _ ->
        let rec fresh () =
          let x = Xorshift.next_u64 rng in
          if Hashtbl.mem seen x then fresh ()
          else begin
            Hashtbl.add seen x ();
            encode_u64 x
          end
        in
        fresh ())
  | Email ->
    (* Distinct ids give distinct addresses (id is embedded verbatim). *)
    let ids = Array.init n (fun i -> i) in
    Xorshift.shuffle rng ids;
    Array.map email_of_id ids
