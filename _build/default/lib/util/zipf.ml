(* Zipfian request-distribution generator, following the rejection-free
   method of Gray et al. ("Quickly generating billion-record synthetic
   databases", SIGMOD '94) as used by YCSB.  A scrambled variant spreads the
   popular items across the key space with an FNV-1a hash, matching YCSB's
   ScrambledZipfianGenerator. *)

type t = {
  items : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
  scrambled : bool;
  rng : Xorshift.t;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let default_theta = 0.99

let create ?(theta = default_theta) ?(scrambled = true) ~items rng =
  if items <= 0 then invalid_arg "Zipf.create: items must be positive";
  let zetan = zeta items theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int items) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { items; theta; zetan; alpha; eta; scrambled; rng }

let fnv1a_64 x =
  let open Int64 in
  let prime = 0x100000001b3L in
  let hash = ref 0xcbf29ce484222325L in
  for shift = 0 to 7 do
    let byte = logand (shift_right_logical (of_int x) (shift * 8)) 0xffL in
    hash := mul (logxor !hash byte) prime
  done;
  !hash

(* Zipfian rank in [0, items): 0 is the most popular rank. *)
let next_rank t =
  let u = Xorshift.float01 t.rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** t.theta) then 1
  else
    let v = float_of_int t.items *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha) in
    min (t.items - 1) (int_of_float v)

let next t =
  let rank = next_rank t in
  if not t.scrambled then rank
  else
    let h = fnv1a_64 rank in
    Int64.to_int (Int64.shift_right_logical h 2) mod t.items

let items t = t.items
