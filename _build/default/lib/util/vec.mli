(** Growable array (OCaml 5.1 predates [Stdlib.Dynarray]). *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty vector; [dummy] fills unused slots. *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val pop : 'a t -> 'a
(** Remove and return the last element.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
val to_array : 'a t -> 'a array
val iter : ('a -> unit) -> 'a t -> unit

val unsafe_data : 'a t -> 'a array
(** Backing array; entries beyond {!length} are dummies. *)
