(* Growable array (OCaml 5.1 predates Stdlib.Dynarray). *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) dummy =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let unsafe_data t = t.data
