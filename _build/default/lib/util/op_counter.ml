(* Deterministic profiling proxy for Table 2.

   The paper profiles point queries with PAPI hardware counters
   (instructions, IPC, L1/L2 misses).  Hardware counters are unavailable
   here, so indexes increment these logical counters instead: node visits
   and pointer dereferences track memory-hierarchy traffic (each is a fresh
   cache line touched in the C layout), key comparisons track instruction
   count.  Table 2's conclusion is about the *relative* ranking of the four
   structures, which these proxies preserve. *)

type snapshot = {
  node_visits : int;
  key_comparisons : int;
  pointer_derefs : int;
}

let node_visits = ref 0
let key_comparisons = ref 0
let pointer_derefs = ref 0

let visit () = incr node_visits
let compare_keys n = key_comparisons := !key_comparisons + n
let deref () = incr pointer_derefs

let reset () =
  node_visits := 0;
  key_comparisons := 0;
  pointer_derefs := 0

let snapshot () =
  {
    node_visits = !node_visits;
    key_comparisons = !key_comparisons;
    pointer_derefs = !pointer_derefs;
  }

let diff a b =
  {
    node_visits = b.node_visits - a.node_visits;
    key_comparisons = b.key_comparisons - a.key_comparisons;
    pointer_derefs = b.pointer_derefs - a.pointer_derefs;
  }

(* Modelled cache lines touched: each node visit or pointer dereference
   lands on a distinct line in the C layout. *)
let cache_lines_touched s = s.node_visits + s.pointer_derefs

(* Modelled instruction count: a handful of instructions per comparison and
   per pointer chase. *)
let instructions s = (8 * s.key_comparisons) + (12 * s.pointer_derefs) + (20 * s.node_visits)
