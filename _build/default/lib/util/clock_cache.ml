(* Fixed-capacity cache with CLOCK (second-chance) replacement,
   approximating LRU as in the paper's compressed static stage (§4.4):
   recently decompressed nodes are kept to avoid repeated decompression. *)

type 'a slot = { mutable key : int; mutable value : 'a option; mutable referenced : bool }

type 'a t = {
  slots : 'a slot array;
  index : (int, int) Hashtbl.t; (* key -> slot position *)
  mutable hand : int;
  mutable hits : int;
  mutable misses : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Clock_cache.create: capacity must be positive";
  {
    slots = Array.init capacity (fun _ -> { key = -1; value = None; referenced = false });
    index = Hashtbl.create (2 * capacity);
    hand = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = Array.length t.slots

let find t key =
  match Hashtbl.find_opt t.index key with
  | Some pos ->
    let slot = t.slots.(pos) in
    slot.referenced <- true;
    t.hits <- t.hits + 1;
    slot.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* Advance the clock hand, clearing reference bits, until a victim with a
   clear bit is found. *)
let evict_position t =
  let n = Array.length t.slots in
  let rec turn () =
    let slot = t.slots.(t.hand) in
    if slot.value <> None && slot.referenced then begin
      slot.referenced <- false;
      t.hand <- (t.hand + 1) mod n;
      turn ()
    end
    else begin
      let pos = t.hand in
      t.hand <- (t.hand + 1) mod n;
      pos
    end
  in
  turn ()

let put t key value =
  match Hashtbl.find_opt t.index key with
  | Some pos ->
    let slot = t.slots.(pos) in
    slot.value <- Some value;
    slot.referenced <- true
  | None ->
    let pos = evict_position t in
    let slot = t.slots.(pos) in
    if slot.value <> None then Hashtbl.remove t.index slot.key;
    slot.key <- key;
    slot.value <- Some value;
    (* fresh entries start unreferenced: only a subsequent hit grants the
       second chance, otherwise a full clock sweep would approximate FIFO *)
    slot.referenced <- false;
    Hashtbl.replace t.index key pos

let clear t =
  Array.iter
    (fun slot ->
      slot.key <- -1;
      slot.value <- None;
      slot.referenced <- false)
    t.slots;
  Hashtbl.reset t.index;
  t.hand <- 0

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
