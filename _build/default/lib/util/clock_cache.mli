(** Fixed-capacity cache with CLOCK (second-chance) replacement,
    approximating LRU — the node cache of the compressed static stage
    (paper §4.4). Keys are integer node ids. *)

type 'a t

val create : int -> 'a t
(** [create capacity] makes an empty cache holding at most [capacity]
    entries.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val find : 'a t -> int -> 'a option
(** Lookup; sets the slot's reference bit on hit and counts hit/miss. *)

val put : 'a t -> int -> 'a -> unit
(** Insert or refresh an entry, evicting via CLOCK when full. *)

val clear : 'a t -> unit
(** Drop every entry (used when the static stage is rebuilt). *)

val hits : 'a t -> int
val misses : 'a t -> int
val hit_rate : 'a t -> float
