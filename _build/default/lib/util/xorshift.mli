(** Deterministic 64-bit pseudo-random number generator
    (splitmix64 seeding, xoshiro256** core).

    Every source of randomness in the repository goes through this module so
    that workload generation and property tests are reproducible from a
    single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a generator deterministically derived from
    [seed]. *)

val next_u64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int
(** Uniform non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float01 : t -> float
(** Uniform float in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** Uniform boolean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
