(* C-layout memory model.

   The paper measures the malloc-level footprint of C++ index structures.
   An OCaml heap measurement would instead report boxing and GC overheads of
   the OCaml runtime, so every index in this repository computes the byte
   footprint its layout would occupy in the paper's C implementation:
   8-byte pointers and values, 512-byte B+tree nodes, the exact ART node
   layouts, and keys stored inline when they fit a machine word.  All
   occupancy / pointer-elimination / deduplication ratios the paper reports
   are properties of the layout and are reproduced exactly by this model.
   See DESIGN.md §3. *)

let pointer_size = 8
let value_size = 8
let cache_line = 64

(* B+tree node size used by the paper's STX baseline tuning (§4.1). *)
let btree_node_size = 512

(* Bytes a node-resident key slot occupies: an 8-byte slice inline, or an
   8-byte pointer plus the out-of-line key bytes. *)
let key_slot_bytes len = if len <= 8 then 8 else pointer_size + len

(* Bytes of a length-prefixed key stored in a concatenated byte array
   (compact structures): the raw bytes plus a 4-byte offset-array entry. *)
let packed_key_bytes len = len + 4

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)
let gib bytes = float_of_int bytes /. (1024.0 *. 1024.0 *. 1024.0)

let pp_bytes ppf bytes =
  if bytes >= 1 lsl 30 then Fmt.pf ppf "%.2f GB" (gib bytes)
  else if bytes >= 1 lsl 20 then Fmt.pf ppf "%.2f MB" (mib bytes)
  else if bytes >= 1 lsl 10 then Fmt.pf ppf "%.2f KB" (float_of_int bytes /. 1024.0)
  else Fmt.pf ppf "%d B" bytes
