(* Byte-oriented LZ77-family compressor standing in for Snappy/LZ4 in the
   Compression D-to-S rule (paper §4.4): designed for fast decompression in
   exchange for a modest compression rate.

   Stream format (after a varint header holding the uncompressed length):
     0x00  varint L          then L literal bytes
     0x01  varint L varint D copy L bytes from distance D back
   Matches are found with a 4-byte hash table; minimum match length 4. *)

let min_match = 4
let hash_bits = 14
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let b k = Char.code (String.unsafe_get s (i + k)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (v * 2654435761) lsr (31 - hash_bits) land (hash_size - 1)

let put_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (!v land 0x7f lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let get_varint s pos =
  let v = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    let b = Char.code (String.unsafe_get s !p) in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  (!v, !p)

let compress input =
  let n = String.length input in
  let buf = Buffer.create (n / 2 + 16) in
  put_varint buf n;
  let table = Array.make hash_size (-1) in
  let lit_start = ref 0 in
  let flush_literals upto =
    if upto > !lit_start then begin
      Buffer.add_char buf '\000';
      put_varint buf (upto - !lit_start);
      Buffer.add_substring buf input !lit_start (upto - !lit_start)
    end
  in
  let i = ref 0 in
  while !i + min_match <= n do
    let h = hash4 input !i in
    let candidate = table.(h) in
    table.(h) <- !i;
    if
      candidate >= 0
      && !i - candidate < 65536
      && String.unsafe_get input candidate = String.unsafe_get input !i
      && String.unsafe_get input (candidate + 1) = String.unsafe_get input (!i + 1)
      && String.unsafe_get input (candidate + 2) = String.unsafe_get input (!i + 2)
      && String.unsafe_get input (candidate + 3) = String.unsafe_get input (!i + 3)
    then begin
      (* extend the match *)
      let len = ref min_match in
      while
        !i + !len < n
        && String.unsafe_get input (candidate + !len) = String.unsafe_get input (!i + !len)
      do
        incr len
      done;
      flush_literals !i;
      Buffer.add_char buf '\001';
      put_varint buf !len;
      put_varint buf (!i - candidate);
      (* seed the hash table inside the match region sparsely *)
      let stop = min (!i + !len) (n - min_match) in
      let j = ref (!i + 1) in
      while !j < stop do
        table.(hash4 input !j) <- !j;
        j := !j + 2
      done;
      i := !i + !len;
      lit_start := !i
    end
    else incr i
  done;
  flush_literals n;
  Buffer.contents buf

let decompress input =
  let total, pos = get_varint input 0 in
  let out = Bytes.create total in
  let opos = ref 0 and ipos = ref pos in
  let n = String.length input in
  while !ipos < n do
    let tag = String.unsafe_get input !ipos in
    incr ipos;
    match tag with
    | '\000' ->
      let len, p = get_varint input !ipos in
      ipos := p;
      Bytes.blit_string input !ipos out !opos len;
      ipos := !ipos + len;
      opos := !opos + len
    | '\001' ->
      let len, p = get_varint input !ipos in
      let dist, p = get_varint input p in
      ipos := p;
      let src = !opos - dist in
      if dist >= len then begin
        Bytes.blit out src out !opos len;
        opos := !opos + len
      end
      else
        (* overlapping copy: byte-by-byte, as in all LZ decoders *)
        for k = 0 to len - 1 do
          Bytes.unsafe_set out (!opos + k) (Bytes.unsafe_get out (src + k));
          if k = len - 1 then opos := !opos + len
        done
    | _ -> invalid_arg "Compress.decompress: corrupt stream"
  done;
  if !opos <> total then invalid_arg "Compress.decompress: truncated stream";
  Bytes.unsafe_to_string out

let uncompressed_length input = fst (get_varint input 0)
