(** The five hybrid indexes evaluated in the paper (§6): DST applied to
    B+tree, Masstree, Skip List and ART, plus the Hybrid-Compressed B+tree
    whose static stage also applies the Compression rule. *)

module Hybrid_btree = Hybrid.Make (Hi_btree.Btree) (Hi_btree.Compact_btree)
module Hybrid_compressed_btree = Hybrid.Make (Hi_btree.Btree) (Hi_btree.Compressed_btree)

(** Future-work (§9) variant: front-coded static stage — between Compact
    and Compressed on the space/performance curve. *)
module Hybrid_frontcoded_btree = Hybrid.Make (Hi_btree.Btree) (Hi_btree.Frontcoded_btree)
module Hybrid_skiplist = Hybrid.Make (Hi_skiplist.Skiplist) (Hi_skiplist.Compact_skiplist)
module Hybrid_masstree = Hybrid.Make (Hi_masstree.Masstree) (Hi_masstree.Compact_masstree)
module Hybrid_art = Hybrid.Make (Hi_art.Art) (Hi_art.Compact_art)

(** {!Index_sig.INDEX} packages of the four original structures. *)

module Btree_index = Index_sig.Of_dynamic (Hi_btree.Btree)
module Skiplist_index = Index_sig.Of_dynamic (Hi_skiplist.Skiplist)
module Masstree_index = Index_sig.Of_dynamic (Hi_masstree.Masstree)
module Art_index = Index_sig.Of_dynamic (Hi_art.Art)

let original_indexes : (string * Index_sig.index) list =
  [
    ("btree", (module Btree_index));
    ("masstree", (module Masstree_index));
    ("skiplist", (module Skiplist_index));
    ("art", (module Art_index));
  ]

(** Hybrid {!Index_sig.INDEX} packages for a given configuration. *)
let hybrid_index ?(config = Hybrid.default_config) name : Index_sig.index =
  let module C = struct
    let config = config
  end in
  match name with
  | "btree" -> (module Index_sig.Of_hybrid (Hi_btree.Btree) (Hi_btree.Compact_btree) (C))
  | "compressed-btree" -> (module Index_sig.Of_hybrid (Hi_btree.Btree) (Hi_btree.Compressed_btree) (C))
  | "frontcoded-btree" -> (module Index_sig.Of_hybrid (Hi_btree.Btree) (Hi_btree.Frontcoded_btree) (C))
  | "masstree" -> (module Index_sig.Of_hybrid (Hi_masstree.Masstree) (Hi_masstree.Compact_masstree) (C))
  | "skiplist" -> (module Index_sig.Of_hybrid (Hi_skiplist.Skiplist) (Hi_skiplist.Compact_skiplist) (C))
  | "art" -> (module Index_sig.Of_hybrid (Hi_art.Art) (Hi_art.Compact_art) (C))
  | other -> invalid_arg ("Instances.hybrid_index: unknown structure " ^ other)
