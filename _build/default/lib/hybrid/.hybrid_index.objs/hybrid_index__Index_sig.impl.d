lib/hybrid/index_sig.ml: Hi_index Hybrid
