lib/hybrid/incremental.ml: Array Bloom Hashtbl Hi_art Hi_btree Hi_index Hi_masstree Hi_skiplist Hi_util Hybrid Index_intf List Mem_model Seq String Unix Vec
