lib/hybrid/instances.ml: Hi_art Hi_btree Hi_masstree Hi_skiplist Hybrid Index_sig
