lib/hybrid/hybrid.ml: Array Bloom Hashtbl Hi_index Hi_util Index_intf List String Unix
