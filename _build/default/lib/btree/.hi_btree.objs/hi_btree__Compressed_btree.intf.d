lib/btree/compressed_btree.mli: Hi_index Seq
