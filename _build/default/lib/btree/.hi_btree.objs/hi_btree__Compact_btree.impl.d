lib/btree/compact_btree.ml: Hi_index Packed_sorted
