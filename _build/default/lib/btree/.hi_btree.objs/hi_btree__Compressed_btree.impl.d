lib/btree/compressed_btree.ml: Array Buffer Bytes Char Clock_cache Compress Hashtbl Hi_index Hi_util Index_intf Inplace_merge Int64 List Mem_model Op_counter Seq String
