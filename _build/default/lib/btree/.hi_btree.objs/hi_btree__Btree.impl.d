lib/btree/btree.ml: Array Hi_util List Mem_model Op_counter String
