lib/btree/frontcoded_btree.ml: Array Buffer Bytes Hi_index Hi_util Index_intf Inplace_merge List Mem_model Op_counter Seq String
