lib/btree/btree.mli:
