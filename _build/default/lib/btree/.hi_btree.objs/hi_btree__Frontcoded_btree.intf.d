lib/btree/frontcoded_btree.mli: Hi_index Seq
