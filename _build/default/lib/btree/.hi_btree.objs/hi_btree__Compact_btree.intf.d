lib/btree/compact_btree.mli: Hi_index Seq
