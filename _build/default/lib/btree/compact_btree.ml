(* Compact B+tree — the static-stage structure obtained from the STX-style
   B+tree by the Compaction and Structural Reduction rules (paper §4.2–4.3):
   duplicate keys collapsed into per-key value arrays, every node 100% full,
   nodes of each level contiguous in memory with child positions computed
   rather than stored. *)

open Hi_index

type t = Packed_sorted.t

let name = "compact-btree"
let empty = Packed_sorted.empty
let build = Packed_sorted.build
let mem = Packed_sorted.mem
let find = Packed_sorted.find
let find_all = Packed_sorted.find_all
let update = Packed_sorted.update
let scan_from = Packed_sorted.scan_from
let iter_sorted = Packed_sorted.iter_sorted
let key_count = Packed_sorted.key_count
let entry_count = Packed_sorted.entry_count
let merge = Packed_sorted.merge

(* Leaf level: fixed 8-byte keys inline, longer keys packed with 4-byte
   offsets; values inline when single, offset-indexed when multi; internal
   levels: 100%-full separator arrays with no child pointers. *)
let memory_bytes t =
  Packed_sorted.leaf_key_store_bytes t
  + Packed_sorted.leaf_value_store_bytes t
  + Packed_sorted.level_key_bytes t

let to_seq = Packed_sorted.to_seq
