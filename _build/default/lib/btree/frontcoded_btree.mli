(** Front-coded static store — a step toward the succinct static stages the
    paper proposes as future work (§3, §9).

    Sorted keys are stored with prefix omission in blocks: the block head
    whole, every other key as (shared-prefix length, suffix).  No
    general-purpose codec, no node cache; a lookup binary-searches block
    heads then reconstructs at most one block.  Lands between Compact
    (faster, larger) and Compressed (slower, smaller) — measured by
    [bench/main.exe ablation].

    Implements {!Hi_index.Index_intf.STATIC}. *)

type t

val name : string
val empty : t
val build : Hi_index.Index_intf.entries -> t
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val key_count : t -> int
val entry_count : t -> int

val merge :
  t ->
  Hi_index.Index_intf.entries ->
  mode:Hi_index.Index_intf.merge_mode ->
  deleted:(string -> bool) ->
  t

val memory_bytes : t -> int
(** Block heads + suffix bytes + 3 bytes/key of coding metadata +
    values. *)

val to_seq : t -> (string * int array) Seq.t

val block_size : int
(** Keys per front-coded block (16). *)
