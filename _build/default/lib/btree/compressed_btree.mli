(** Compressed B+tree — the Compression rule (paper §4.4) on top of the
    compact layout: leaf pages are serialized and LZ-compressed; only the
    per-page routing keys stay uncompressed, so a point query decompresses
    at most one page.  A CLOCK node cache of recently decompressed pages
    amortizes decompression (Appendix D).

    Implements {!Hi_index.Index_intf.STATIC}; used as the static stage of
    the Hybrid-Compressed B+tree. *)

type t

val name : string
val empty : t
val build : Hi_index.Index_intf.entries -> t
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list

val update : t -> string -> int -> bool
(** Decompress–modify–recompress of the affected page. *)

val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val key_count : t -> int
val entry_count : t -> int

val merge :
  t ->
  Hi_index.Index_intf.entries ->
  mode:Hi_index.Index_intf.merge_mode ->
  deleted:(string -> bool) ->
  t

val memory_bytes : t -> int
(** Compressed page payloads + routing keys + the node cache. *)

val decompressions : t -> int
(** Pages decompressed so far (cache misses). *)

val cache_hit_rate : t -> float

val default_page_entries : int
val default_cache_pages : int

val set_cache_pages : int -> unit
(** Node-cache capacity for subsequently built trees; 0 restores the
    adaptive default (~1/16 of the pages), 1 effectively disables caching
    (Appendix D ablation). *)

val to_seq : t -> (string * int array) Seq.t
(** Lazy entry cursor in key order — pulls one entry at a time so the
    incremental merge (paper §9 future work) can bound its per-step
    work. *)
