(** Compact B+tree — the static stage obtained from the B+tree by the
    Compaction and Structural Reduction rules (paper §4.2–4.3, Fig 2):
    duplicate keys collapse into per-key value arrays, every node is 100 %
    full, level arrays are contiguous and child positions are computed
    rather than stored.

    Implements {!Hi_index.Index_intf.STATIC}. *)

type t

val name : string
val empty : t

val build : Hi_index.Index_intf.entries -> t
(** Build from strictly-sorted, duplicate-free entries. *)

val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list

val update : t -> string -> int -> bool
(** In-place first-value replacement (secondary-index updates, §3). *)

val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val key_count : t -> int
val entry_count : t -> int

val merge :
  t ->
  Hi_index.Index_intf.entries ->
  mode:Hi_index.Index_intf.merge_mode ->
  deleted:(string -> bool) ->
  t
(** Sorted-array merge (§5.1): linear in the result size, dropping
    tombstoned keys and resolving duplicates per [mode]. *)

val memory_bytes : t -> int
(** Modelled compact layout: packed keys (8-byte slots when fixed-width,
    otherwise bytes + offsets), inline or offset-indexed values, 100 %-full
    separator levels with no child pointers. *)

val to_seq : t -> (string * int array) Seq.t
(** Lazy entry cursor in key order — pulls one entry at a time so the
    incremental merge (paper §9 future work) can bound its per-step
    work. *)
