lib/ycsb/ycsb.mli: Hi_util Hybrid_index
