lib/ycsb/ycsb.ml: Array Hi_util Hybrid_index Index_sig Key_codec Unix Xorshift Zipf
