(* Compact Skip List — the static-stage structure from applying Compaction
   and Structural Reduction to the paged-deterministic Skip List (paper
   §4.2–4.3, Fig 2): the level-0 linked pages collapse into one contiguous
   packed entry array (no next pointers), and the express towers become
   sampled separator lanes whose targets are computed from offsets. *)

open Hi_index

type t = Packed_sorted.t

let name = "compact-skiplist"
let empty = Packed_sorted.empty
let build = Packed_sorted.build
let mem = Packed_sorted.mem
let find = Packed_sorted.find
let find_all = Packed_sorted.find_all
let update = Packed_sorted.update
let scan_from = Packed_sorted.scan_from
let iter_sorted = Packed_sorted.iter_sorted
let key_count = Packed_sorted.key_count
let entry_count = Packed_sorted.entry_count
let merge = Packed_sorted.merge

(* Packed entry lane plus express lanes: each lane entry keeps its key slot
   only — forward "pointers" are computed, as in the reduced structure. *)
let memory_bytes t =
  Packed_sorted.leaf_key_store_bytes t
  + Packed_sorted.leaf_value_store_bytes t
  + Packed_sorted.level_key_bytes t

let to_seq = Packed_sorted.to_seq
