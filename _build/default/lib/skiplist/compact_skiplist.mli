(** Compact Skip List — Compaction + Structural Reduction applied to the
    paged-deterministic Skip List (paper §4.2–4.3, Fig 2): the level-0
    pages collapse into one packed entry array, the express towers become
    sampled separator lanes with computed targets.

    Implements {!Hi_index.Index_intf.STATIC}. *)

type t

val name : string
val empty : t
val build : Hi_index.Index_intf.entries -> t
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val key_count : t -> int
val entry_count : t -> int

val merge :
  t ->
  Hi_index.Index_intf.entries ->
  mode:Hi_index.Index_intf.merge_mode ->
  deleted:(string -> bool) ->
  t

val memory_bytes : t -> int

val to_seq : t -> (string * int array) Seq.t
(** Lazy entry cursor in key order — pulls one entry at a time so the
    incremental merge (paper §9 future work) can bound its per-step
    work. *)
