lib/skiplist/compact_skiplist.mli: Hi_index Seq
