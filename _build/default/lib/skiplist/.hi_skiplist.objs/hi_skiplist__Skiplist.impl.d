lib/skiplist/skiplist.ml: Array Hi_util List Mem_model Op_counter String
