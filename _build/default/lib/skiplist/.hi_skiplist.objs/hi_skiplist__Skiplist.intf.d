lib/skiplist/skiplist.mli:
