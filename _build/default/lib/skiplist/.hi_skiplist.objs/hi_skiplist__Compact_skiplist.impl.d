lib/skiplist/compact_skiplist.ml: Hi_index Packed_sorted
