lib/masstree/layer_tree.mli:
