lib/masstree/layer_tree.ml: Array Hi_util Int64 Op_counter
