lib/masstree/masstree.mli:
