lib/masstree/compact_masstree.ml: Array Buffer Bytes Char Hi_index Hi_util Index_intf Inplace_merge Int64 List Mem_model Op_counter Seq String
