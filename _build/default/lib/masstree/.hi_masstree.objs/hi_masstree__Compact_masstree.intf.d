lib/masstree/compact_masstree.mli: Hi_index Seq
