lib/masstree/masstree.ml: Array Bytes Char Hi_util Int64 Layer_tree List Mem_model Op_counter String
