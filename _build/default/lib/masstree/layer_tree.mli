(** The per-trie-node B+tree of Masstree (paper §4.1): each trie layer is
    a B+tree keyed by an 8-byte keyslice (compared unsigned) plus a slice
    length marker — 0–8 when a key ends within the slice after that many
    bytes, 9 when it extends past the slice.  Fanout 15, unique keys,
    proactive top-down splits. *)

type 'a t

val fanout : int
(** Masstree's node fanout (15 keys per node). *)

val create : 'a -> 'a t
(** [create dummy] makes an empty layer; [dummy] fills unused slots. *)

val find : 'a t -> int64 -> int -> 'a option

val upsert : 'a t -> int64 -> int -> ('a option -> 'a) -> unit
(** [upsert t slice len f] stores [f None] for a fresh key or replaces an
    existing link with [f (Some link)]. *)

val remove : 'a t -> int64 -> int -> bool

exception Stop
(** Raise from an iteration callback to end the walk early. *)

val iter : 'a t -> (int64 -> int -> 'a -> unit) -> unit
(** In (slice, len) order — which equals byte-string key order. *)

val iter_from : 'a t -> int64 -> int -> (int64 -> int -> 'a -> unit) -> unit
(** In-order from the lower bound of the given (slice, len). *)

val iter_leaves : 'a t -> (int -> 'a array -> unit) -> unit
(** Visit each leaf's live entry count and links (keybag accounting). *)

val size : 'a t -> int
val node_count : 'a t -> int * int
(** (inner nodes, leaf nodes). *)
