(* The per-trie-node B+tree of Masstree (paper §4.1): each trie layer is a
   B+tree keyed by an 8-byte keyslice plus a slice length marker (0–8 =
   key ends within this slice after that many bytes; 9 = key extends past
   the slice).  Slices are compared as unsigned 64-bit integers, which is
   what makes Masstree's per-layer comparisons cheap.

   Unique keys, Masstree's fanout of 15, proactive top-down splits. *)

open Hi_util

let fanout = 15 (* max keys per node *)

type 'a node = Leaf of 'a leaf | Inner of 'a inner

and 'a leaf = {
  kslices : int64 array;
  klens : int array;
  links : 'a array;
  mutable ln : int;
  mutable next : 'a leaf option;
}

and 'a inner = {
  islices : int64 array;
  ilens : int array;
  children : 'a node array;
  mutable ik : int;
}

type 'a t = {
  mutable root : 'a node;
  mutable size : int;
  mutable leaves : int;
  mutable inners : int;
  dummy : 'a;
}

let compare_key s1 l1 s2 l2 =
  Op_counter.compare_keys 1;
  let c = Int64.unsigned_compare s1 s2 in
  if c <> 0 then c else compare l1 l2

let new_leaf dummy =
  { kslices = Array.make fanout 0L; klens = Array.make fanout 0; links = Array.make fanout dummy; ln = 0; next = None }

let create dummy =
  { root = Leaf (new_leaf dummy); size = 0; leaves = 1; inners = 0; dummy }

let new_inner t =
  {
    islices = Array.make fanout 0L;
    ilens = Array.make fanout 0;
    children = Array.make (fanout + 1) t.root;
    ik = 0;
  }

let leaf_lower_bound l s len =
  let lo = ref 0 and hi = ref l.ln in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key l.kslices.(mid) l.klens.(mid) s len < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* child covering (s, len): keys equal to a separator live in the right
   child (unique keys, separator = first key of the right sibling) *)
let child_index n s len =
  let lo = ref 0 and hi = ref n.ik in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key n.islices.(mid) n.ilens.(mid) s len <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let split_child t parent i =
  let insert_sep s len right =
    Array.blit parent.islices i parent.islices (i + 1) (parent.ik - i);
    Array.blit parent.ilens i parent.ilens (i + 1) (parent.ik - i);
    Array.blit parent.children (i + 1) parent.children (i + 2) (parent.ik - i);
    parent.islices.(i) <- s;
    parent.ilens.(i) <- len;
    parent.children.(i + 1) <- right;
    parent.ik <- parent.ik + 1
  in
  match parent.children.(i) with
  | Leaf l ->
    let mid = l.ln / 2 in
    let right = new_leaf t.dummy in
    Array.blit l.kslices mid right.kslices 0 (l.ln - mid);
    Array.blit l.klens mid right.klens 0 (l.ln - mid);
    Array.blit l.links mid right.links 0 (l.ln - mid);
    right.ln <- l.ln - mid;
    Array.fill l.links mid (l.ln - mid) t.dummy;
    l.ln <- mid;
    right.next <- l.next;
    l.next <- Some right;
    t.leaves <- t.leaves + 1;
    insert_sep right.kslices.(0) right.klens.(0) (Leaf right)
  | Inner n ->
    let midk = n.ik / 2 in
    let s = n.islices.(midk) and len = n.ilens.(midk) in
    let right = new_inner t in
    let nright = n.ik - midk - 1 in
    Array.blit n.islices (midk + 1) right.islices 0 nright;
    Array.blit n.ilens (midk + 1) right.ilens 0 nright;
    Array.blit n.children (midk + 1) right.children 0 (nright + 1);
    right.ik <- nright;
    n.ik <- midk;
    t.inners <- t.inners + 1;
    insert_sep s len (Inner right)

let node_full = function Leaf l -> l.ln = fanout | Inner n -> n.ik = fanout

(* Insert or mutate: [f None] creates a link, [f (Some link)] replaces it. *)
let upsert t s len f =
  if node_full t.root then begin
    let nr = new_inner t in
    nr.children.(0) <- t.root;
    t.inners <- t.inners + 1;
    t.root <- Inner nr;
    split_child t nr 0
  end;
  let rec go node =
    Op_counter.visit ();
    match node with
    | Leaf l ->
      let pos = leaf_lower_bound l s len in
      if pos < l.ln && l.kslices.(pos) = s && l.klens.(pos) = len then l.links.(pos) <- f (Some l.links.(pos))
      else begin
        Array.blit l.kslices pos l.kslices (pos + 1) (l.ln - pos);
        Array.blit l.klens pos l.klens (pos + 1) (l.ln - pos);
        Array.blit l.links pos l.links (pos + 1) (l.ln - pos);
        l.kslices.(pos) <- s;
        l.klens.(pos) <- len;
        l.links.(pos) <- f None;
        l.ln <- l.ln + 1;
        t.size <- t.size + 1
      end
    | Inner n ->
      let i = child_index n s len in
      let i =
        if node_full n.children.(i) then begin
          split_child t n i;
          if compare_key s len n.islices.(i) n.ilens.(i) >= 0 then i + 1 else i
        end
        else i
      in
      Op_counter.deref ();
      go n.children.(i)
  in
  go t.root

let find t s len =
  let rec go node =
    Op_counter.visit ();
    match node with
    | Leaf l ->
      let pos = leaf_lower_bound l s len in
      if pos < l.ln && l.kslices.(pos) = s && l.klens.(pos) = len then Some l.links.(pos) else None
    | Inner n ->
      Op_counter.deref ();
      go n.children.(child_index n s len)
  in
  go t.root

let remove t s len =
  let rec go node =
    match node with
    | Leaf l ->
      let pos = leaf_lower_bound l s len in
      if pos < l.ln && l.kslices.(pos) = s && l.klens.(pos) = len then begin
        Array.blit l.kslices (pos + 1) l.kslices pos (l.ln - pos - 1);
        Array.blit l.klens (pos + 1) l.klens pos (l.ln - pos - 1);
        Array.blit l.links (pos + 1) l.links pos (l.ln - pos - 1);
        l.ln <- l.ln - 1;
        l.links.(l.ln) <- t.dummy;
        t.size <- t.size - 1;
        true
      end
      else false
    | Inner n -> go n.children.(child_index n s len)
  in
  go t.root

let leftmost t =
  let rec go = function Leaf l -> l | Inner n -> go n.children.(0) in
  go t.root

exception Stop

(* In-order visit starting at the lower bound of (s0, len0); the callback
   raises [Stop] to end early. *)
let iter_from t s0 len0 f =
  let rec go l pos =
    if pos < l.ln then begin
      f l.kslices.(pos) l.klens.(pos) l.links.(pos);
      go l (pos + 1)
    end
    else match l.next with None -> () | Some nxt -> go nxt 0
  in
  let rec descend node =
    match node with
    | Leaf l -> (l, leaf_lower_bound l s0 len0)
    | Inner n -> descend n.children.(child_index n s0 len0)
  in
  (* the lower bound may sit at the start of the next leaf *)
  try
    let l, pos = descend t.root in
    go l pos
  with Stop -> ()

let iter t f = try let l = leftmost t in
    let rec go l pos =
      if pos < l.ln then begin
        f l.kslices.(pos) l.klens.(pos) l.links.(pos);
        go l (pos + 1)
      end
      else match l.next with None -> () | Some nxt -> go nxt 0
    in
    go l 0
  with Stop -> ()

(* Visit each leaf's live entry count and links (for keybag accounting). *)
let iter_leaves t f =
  let rec go = function
    | None -> ()
    | Some l ->
      f l.ln (Array.sub l.links 0 l.ln);
      go l.next
  in
  go (Some (leftmost t))

let size t = t.size
let node_count t = (t.inners, t.leaves)
