(** Compact Masstree — the static-stage structure of paper Fig 4: each trie
    node's B+tree collapses into sorted arrays searched by binary search
    (§4.3), and the node's key suffixes are concatenated into a single byte
    array with an offset array marking starts.

    [merge] implements the recursive trie merge of Appendix B (Fig 10);
    untouched sub-layers are reused as-is.

    Implements {!Hi_index.Index_intf.STATIC}. *)

type t

val name : string
val empty : t
val build : Hi_index.Index_intf.entries -> t
val mem : t -> string -> bool
val find : t -> string -> int option
val find_all : t -> string -> int list
val update : t -> string -> int -> bool
val scan_from : t -> string -> int -> (string * int) list
val iter_sorted : t -> (string -> int array -> unit) -> unit
val key_count : t -> int
val entry_count : t -> int

val merge :
  t ->
  Hi_index.Index_intf.entries ->
  mode:Hi_index.Index_intf.merge_mode ->
  deleted:(string -> bool) ->
  t
(** Recursive merge_nodes / add_item / create_node of Fig 10; merges with
    tombstones fall back to a flat rebuild. *)

val memory_bytes : t -> int
(** Fig 4 layout: per entry an 8-byte keyslice, 1-byte length, 8-byte value
    pointer and 4-byte suffix offset, plus the concatenated suffix bytes
    and value arrays. *)

val to_seq : t -> (string * int array) Seq.t
(** Lazy entry cursor in key order — pulls one entry at a time so the
    incremental merge (paper §9 future work) can bound its per-step
    work. *)
