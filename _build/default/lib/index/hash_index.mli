(** Open-addressing hash index (robin-hood probing, backward-shift
    deletion).

    The equality-only counterpart discussed in the paper's Appendix A:
    supported by most in-memory DBMSs, default in none, because it cannot
    answer range queries.  One value per key; inserting an existing key
    replaces its value. *)

type t

val name : string
val create : unit -> t

val insert : t -> string -> int -> unit
(** Insert or replace. *)

val find : t -> string -> int option
val mem : t -> string -> bool

val delete : t -> string -> bool
(** Remove a key; [false] when absent. *)

val entry_count : t -> int
val clear : t -> unit

val memory_bytes : t -> int
(** Modelled layout: 17 bytes per slot (key slice/pointer, value,
    metadata) plus out-of-line long keys. *)

val load_factor : t -> float
