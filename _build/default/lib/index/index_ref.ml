(* Reference index: a Map-based oracle implementing the DYNAMIC semantics.
   Property tests run random operation sequences against a real structure
   and this model and compare observations. *)

module M = Map.Make (String)

type t = { mutable map : int list M.t }

let name = "reference"
let create () = { map = M.empty }

let insert t k v =
  t.map <- M.update k (function None -> Some [ v ] | Some vs -> Some (vs @ [ v ])) t.map

let mem t k = M.mem k t.map
let find t k = match M.find_opt k t.map with Some (v :: _) -> Some v | _ -> None
let find_all t k = match M.find_opt k t.map with Some vs -> vs | None -> []

let update t k v =
  match M.find_opt k t.map with
  | Some (_ :: rest) ->
    t.map <- M.add k (v :: rest) t.map;
    true
  | _ -> false

let delete t k =
  if M.mem k t.map then begin
    t.map <- M.remove k t.map;
    true
  end
  else false

let delete_value t k v =
  match M.find_opt k t.map with
  | None -> false
  | Some vs ->
    if List.mem v vs then begin
      let rec drop_first = function
        | [] -> []
        | x :: rest -> if x = v then rest else x :: drop_first rest
      in
      (match drop_first vs with
      | [] -> t.map <- M.remove k t.map
      | vs' -> t.map <- M.add k vs' t.map);
      true
    end
    else false

let scan_from t k n =
  let _, eq, above = M.split k t.map in
  let seq =
    match eq with
    | None -> M.to_seq above
    | Some vs -> Seq.cons (k, vs) (M.to_seq above)
  in
  let out = ref [] and taken = ref 0 in
  Seq.iter
    (fun (key, vs) ->
      List.iter
        (fun v ->
          if !taken < n then begin
            out := (key, v) :: !out;
            incr taken
          end)
        vs)
    seq;
  List.rev !out

let iter_sorted t f = M.iter (fun k vs -> f k (Array.of_list vs)) t.map
let entry_count t = M.fold (fun _ vs acc -> acc + List.length vs) t.map 0
let clear t = t.map <- M.empty
let memory_bytes _ = 0
