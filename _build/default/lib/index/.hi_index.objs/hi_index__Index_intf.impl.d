lib/index/index_intf.ml:
