lib/index/packed_sorted.ml: Array Bytes Char Hi_util Index_intf Inplace_merge Int64 List Mem_model Op_counter Seq String
