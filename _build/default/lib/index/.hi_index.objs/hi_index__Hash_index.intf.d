lib/index/hash_index.mli:
