lib/index/hash_index.ml: Array Bloom Hi_util Int64 Op_counter String
