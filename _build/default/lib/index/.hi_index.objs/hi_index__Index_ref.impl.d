lib/index/index_ref.ml: Array List Map Seq String
